//! Run every table/figure harness in sequence (pass --quick through).

use pacman_bench::BenchOpts;
use std::process::Command;

fn main() {
    let quick = BenchOpts::from_args().quick;
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for target in [
        "fig11",
        "table1",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "table2",
        "table3",
        "fig_adaptive",
        "fig_restart",
        "fig_failover",
        "fig_space",
    ] {
        let mut cmd = Command::new(dir.join(target));
        if quick {
            cmd.arg("--quick");
        }
        println!();
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("spawn {target}: {e}"));
        assert!(status.success(), "{target} failed");
    }
}
