//! Adaptive hybrid logging (ALR): runtime log volume vs recovery time,
//! CLR-P / LLR-P / ALR-P compared on a replay-cost-skewed TPC-C and on
//! Smallbank.
//!
//! The ALR scheme classifies each committing transaction with the
//! static+EWMA cost model (`pacman_core::static_analysis::cost`): cheap
//! transactions emit command records, replay-heavy ones (TPC-C NewOrder's
//! order-line loop; Smallbank's read-heavy WriteCheck/Amalgamate) emit
//! proc-tagged logical records. Expected shape, after Yao et al.:
//! ALR-P's recovery time approaches LLR-P's (the expensive re-executions
//! were short-circuited) while its log volume approaches CL's (most
//! records are still tiny commands) — i.e. recovery ≤ CLR-P and bytes ≤
//! LLR-P.
//!
//! `--scheme <name>` narrows the runtime row to one scheme; `--quick`
//! shrinks run lengths.

use pacman_bench::{
    banner, bench_smallbank, bench_tpcc, capped_threads, default_workers, full_speed_ssd,
    prepare_crashed_on, recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;
use pacman_workloads::Workload;

struct Row {
    label: &'static str,
    bytes_logged: u64,
    committed: u64,
    mix: (u64, u64),
    recovery_secs: f64,
    log_secs: f64,
}

fn run_one(
    workload: &dyn Workload,
    log: LogScheme,
    rec: RecoveryScheme,
    label: &'static str,
    secs: u64,
    workers: usize,
    threads: usize,
) -> Row {
    // Full-speed device: the 1/10-scaled disk of the throughput figures
    // makes every scheme reload-bound and would mask the replay-cost
    // difference this figure isolates.
    let crashed = prepare_crashed_on(workload, log, secs, workers, 0.0, full_speed_ssd());
    let out = recover_checked(&crashed, rec, threads);
    Row {
        label,
        bytes_logged: crashed.bytes_logged,
        committed: crashed.committed,
        mix: (crashed.command_records, crashed.logical_records),
        recovery_secs: out.report.total_secs,
        log_secs: out.report.log_total_secs,
    }
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>20} {:>12} {:>12}",
        "scheme", "committed", "log MiB", "B/txn", "mix (cmd/logical)", "log rec (s)", "total (s)"
    );
    for r in rows {
        println!(
            "{:>8} {:>12} {:>14.2} {:>14.1} {:>20} {:>12.4} {:>12.4}",
            r.label,
            r.committed,
            r.bytes_logged as f64 / (1024.0 * 1024.0),
            r.bytes_logged as f64 / r.committed.max(1) as f64,
            format!("{}/{}", r.mix.0, r.mix.1),
            r.log_secs,
            r.recovery_secs,
        );
    }
}

fn verdict(rows: &[Row]) {
    let clr = &rows[0];
    let llr = &rows[1];
    let alr = &rows[2];
    let time_ok = alr.log_secs <= clr.log_secs;
    let bytes_ok = alr.bytes_logged as f64 / alr.committed.max(1) as f64
        <= llr.bytes_logged as f64 / llr.committed.max(1) as f64;
    println!(
        "  ALR-P log-recovery {} CLR-P ({:.4}s vs {:.4}s) — {}",
        if time_ok { "<=" } else { ">" },
        alr.log_secs,
        clr.log_secs,
        if time_ok { "as expected" } else { "UNEXPECTED" }
    );
    println!(
        "  ALR bytes/txn {} LL bytes/txn ({:.1} vs {:.1}) — {}",
        if bytes_ok { "<=" } else { ">" },
        alr.bytes_logged as f64 / alr.committed.max(1) as f64,
        llr.bytes_logged as f64 / llr.committed.max(1) as f64,
        if bytes_ok {
            "as expected"
        } else {
            "UNEXPECTED"
        }
    );
}

fn main() {
    let opts = BenchOpts::from_args();
    let only = BenchOpts::scheme_filter();
    banner(
        "Adaptive hybrid logging — CLR-P vs LLR-P vs ALR-P",
        "per-transaction format choice: command-log the cheap-to-replay \
         transactions, value-log the expensive ones; ALR-P recovers like \
         LLR-P while logging like CL (Yao et al., adaptive logging)",
    );
    let threads = capped_threads(24);
    let secs = opts.run_secs();
    let workers = default_workers();
    let pipelined = ReplayMode::Pipelined;

    // Workloads are stateless generators: one instance serves all three
    // logging schemes.
    let scenarios: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "tpcc (skewed replay cost: loop-heavy mix)",
            Box::new(pacman_workloads::tpcc::Tpcc::new(
                bench_tpcc(opts.quick).cfg.skewed_replay(),
            )),
        ),
        ("smallbank", Box::new(bench_smallbank(opts.quick))),
    ];

    for (name, wl) in scenarios {
        println!("\n--- {name} ({workers} workers, {threads} recovery threads) ---");
        let mut rows = Vec::new();
        let configs: [(LogScheme, RecoveryScheme, &'static str); 3] = [
            (
                LogScheme::Command,
                RecoveryScheme::ClrP { mode: pipelined },
                "CLR-P",
            ),
            (LogScheme::Logical, RecoveryScheme::LlrP, "LLR-P"),
            (
                LogScheme::Adaptive,
                RecoveryScheme::AlrP { mode: pipelined },
                "ALR-P",
            ),
        ];
        for (log, rec, label) in configs {
            if let Some(o) = only {
                if o != log {
                    continue;
                }
            }
            rows.push(run_one(
                wl.as_ref(),
                log,
                rec,
                label,
                secs,
                workers,
                threads,
            ));
        }
        print_rows(&rows);
        if rows.len() == 3 {
            verdict(&rows);
        }
    }

    pacman_bench::finish_bin("fig_adaptive");
}
