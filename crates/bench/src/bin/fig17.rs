//! Fig. 17: database recovery with ad-hoc transactions — CLR-P's recovery
//! time falls smoothly toward the pure LLR-P behaviour as the ad-hoc
//! fraction grows (write-only replay skips the reads).

use pacman_bench::{
    banner, bench_smallbank, bench_tpcc, capped_threads, default_workers, prepare_crashed,
    recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 17 — recovery with ad-hoc transactions (CLR-P)",
        "recovery time drops smoothly as the ad-hoc fraction rises; at 100% \
         CLR-P behaves like LLR-P (only write reinstalls, no reads)",
    );
    let threads = capped_threads(24);
    let secs = opts.run_secs();
    let workers = default_workers();
    let fractions: &[f64] = if opts.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    for wl in ["tpcc", "smallbank"] {
        println!("\n--- {wl} ---");
        println!(
            "{:>8} {:>16} {:>12} {:>12} {:>8}",
            "adhoc", "checkpoint (s)", "log (s)", "total (s)", "txns"
        );
        for &f in fractions {
            let crashed = match wl {
                "tpcc" => prepare_crashed(
                    &bench_tpcc(opts.quick),
                    LogScheme::Command,
                    secs,
                    workers,
                    f,
                ),
                _ => prepare_crashed(
                    &bench_smallbank(opts.quick),
                    LogScheme::Command,
                    secs,
                    workers,
                    f,
                ),
            };
            let out = recover_checked(
                &crashed,
                RecoveryScheme::ClrP {
                    mode: ReplayMode::Pipelined,
                },
                threads,
            );
            println!(
                "{:>8.1} {:>16.4} {:>12.4} {:>12.4} {:>8}",
                f,
                out.report.checkpoint_total_secs,
                out.report.log_total_secs,
                out.report.total_secs,
                out.report.txns
            );
        }
    }

    pacman_bench::finish_bin("fig17");
}
