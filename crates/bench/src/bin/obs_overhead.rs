//! Observability overhead guard.
//!
//! Measures what the flight recorder costs the hot path, two ways:
//!
//! * a tight-loop microbenchmark of the disabled `Tracer::emit` — the
//!   path every production call site pays when tracing is off (one
//!   relaxed load + branch). This is the hard guard: it must stay in the
//!   low tens of nanoseconds even on the slowest machine.
//! * an end-to-end A/B: the adaptive-logging drive (`fig_adaptive`'s
//!   quick shape) with tracing disabled twice (run-to-run noise
//!   baseline) and enabled once. The ratio is recorded, not asserted —
//!   on a loaded 1-core box the noise between two *disabled* runs can
//!   exceed the tracing cost, so a hard threshold would only flake.
//!
//! Results land in the registry under `bench.obs_overhead.*` and are
//! exported through the standard `--json` path.

use pacman_bench::{banner, bench_smallbank, boot, default_workers, drive, BenchOpts};
use pacman_obs::TraceEvent;
use pacman_wal::LogScheme;
use std::time::Instant;

fn adaptive_drive(quick: bool) -> f64 {
    let wl = bench_smallbank(quick);
    let sys = boot(&wl, 2, LogScheme::Adaptive, None, true);
    let secs = if quick { 1 } else { 2 };
    let r = drive(&sys, &wl, secs, default_workers(), 0.1);
    sys.durability.shutdown();
    r.throughput
}

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "obs_overhead: flight-recorder cost (disabled emit + enabled A/B)",
        "tracing must be effectively free when off and cheap when on",
    );

    // Hard guard: the disabled emit path.
    let tracer = pacman_obs::tracer();
    tracer.disable();
    const N: u64 = 2_000_000;
    let t0 = Instant::now();
    for i in 0..N {
        tracer.emit(TraceEvent::Marker { code: i });
    }
    let ns_per_emit = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("disabled emit: {ns_per_emit:.2} ns/op ({N} iterations)");
    assert!(
        ns_per_emit < 200.0,
        "disabled trace emit costs {ns_per_emit:.1} ns/op — the off path must stay near-zero"
    );

    // Hard guard: the span-table record path — the per-epoch-stage stamp
    // the logger / pepoch watcher / shipper pay. A fresh table keeps the
    // microbench loop out of the global `wal.epoch.*` histograms; each
    // iteration claims a slot (the slow path) and feeds one transition
    // histogram, so this bounds the *worst* stamp, not the amortized one.
    let spans = pacman_obs::EpochSpanTable::new();
    const M: u64 = 500_000;
    let t0 = Instant::now();
    for e in 1..=M {
        spans.record(e, pacman_obs::Stage::Staged);
        spans.record(e, pacman_obs::Stage::Sealed);
    }
    let ns_per_record = t0.elapsed().as_nanos() as f64 / (2 * M) as f64;
    println!("span record:   {ns_per_record:.2} ns/op ({} stamps)", 2 * M);
    assert!(
        ns_per_record < 100.0,
        "span-table record costs {ns_per_record:.1} ns/op — the stamp must stay under 100 ns"
    );

    // End-to-end A/B on the adaptive drive. Two disabled runs bracket the
    // machine's run-to-run noise; the enabled run is read against them.
    let disabled_a = adaptive_drive(opts.quick);
    let disabled_b = adaptive_drive(opts.quick);
    tracer.enable();
    let enabled = adaptive_drive(opts.quick);
    tracer.disable();

    let base = disabled_a.max(disabled_b);
    let ratio = if base > 0.0 { enabled / base } else { 1.0 };
    let noise = if base > 0.0 {
        (disabled_a - disabled_b).abs() / base
    } else {
        0.0
    };
    println!("disabled run A: {disabled_a:>10.0} txn/s");
    println!(
        "disabled run B: {disabled_b:>10.0} txn/s  (noise {:.1}%)",
        noise * 100.0
    );
    println!("enabled run:    {enabled:>10.0} txn/s  (ratio {ratio:.3} of best disabled)");

    let reg = pacman_obs::registry();
    reg.gauge_f("bench.obs_overhead.disabled_emit_ns")
        .set(ns_per_emit);
    reg.gauge_f("bench.obs_overhead.span_record_ns")
        .set(ns_per_record);
    reg.gauge_f("bench.obs_overhead.disabled_tput_a")
        .set(disabled_a);
    reg.gauge_f("bench.obs_overhead.disabled_tput_b")
        .set(disabled_b);
    reg.gauge_f("bench.obs_overhead.enabled_tput").set(enabled);
    reg.gauge_f("bench.obs_overhead.enabled_ratio").set(ratio);

    pacman_bench::finish_bin("obs_overhead");
}
