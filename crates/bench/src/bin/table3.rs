//! Table 3 (Appendix D): average transaction latency with and without
//! fsync, one vs two devices (checkpointing disabled, as in the paper).

use pacman_bench::{banner, bench_tpcc, boot, default_workers, drive, BenchOpts};
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Table 3 — average latency with/without fsync (TPC-C)",
        "fsync dominates tuple-level latency (38→10 ms in the paper); \
         command logging is least affected because its records are small",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    println!(
        "{:>6} {:>8} {:>12} {:>16} {:>14}",
        "disks", "fsync", "scheme", "mean lat (us)", "p99 (us)"
    );
    for disks in [1usize, 2] {
        for fsync in [true, false] {
            for scheme in [LogScheme::Physical, LogScheme::Logical, LogScheme::Command] {
                let tpcc = bench_tpcc(opts.quick);
                let sys = boot(&tpcc, disks, scheme, None, fsync);
                pacman_wal::run_checkpoint(&sys.db, &sys.storage, disks).unwrap();
                sys.storage.reset_stats();
                let r = drive(&sys, &tpcc, secs, workers, 0.0);
                println!(
                    "{:>6} {:>8} {:>12} {:>16.0} {:>14}",
                    disks,
                    if fsync { "on" } else { "off" },
                    scheme.label(),
                    r.latency_us.mean(),
                    r.latency_us.quantile(0.99)
                );
                sys.durability.shutdown();
            }
        }
    }

    pacman_bench::finish_bin("table3");
}
