//! Allocation-count figure: what the zero-copy hot paths cost in
//! allocator traffic.
//!
//! Reports two numbers next to the throughput figures:
//!
//! * **allocs/txn (commit)** — allocator calls per command-logged
//!   transaction through the per-worker epoch arena
//!   (`log_commit_buffered`), measured against the per-record
//!   `log_commit` path it replaced;
//! * **bytes/record (replay)** — bytes requested from the allocator per
//!   log record when scanning a batch through `MergedBatchView` (the
//!   replay hot path), against the owned `read_merged_batch` decode;
//! * **allocs/txn (read)** — allocator calls per read-only OCC
//!   transaction on the latch-free read path (shared `Arc<Row>` images +
//!   newest-slot validation). Budget: ≤ 1, the read-set map itself.
//! * **allocs/txn (write)** — allocator calls per single-row
//!   read-modify-write transaction on the pooled-scratch write path
//!   (`read_for_update` + staged `Arc<Row>` image shared with the log).
//!   Budget: ≤ 2, the two allocations that materialize the new image
//!   (`Arc<[Value]>` column slab + `Arc<Row>` header).
//!
//! This bin owns a counting global allocator (a pass-through wrapper
//! over the system allocator), which is why the measurement lives here
//! and not inside the library crates.

use pacman_bench::{banner, print_row, BenchOpts};
use pacman_common::clock::epoch_floor;
use pacman_common::{ProcId, Row, TableId, Value};
use pacman_engine::{Catalog, CommitInfo, Database, WriteKind, WriteRecord};
use pacman_storage::{DiskConfig, StorageSet};
use pacman_wal::{
    batch_name, read_merged_batch, read_merged_batch_view, Durability, DurabilityConfig,
    LogPayload, LogScheme, TxnLogRecord, WorkerLogBuffer,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the counters are
// thread-local and touched outside the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn bytes_now() -> u64 {
    BYTES.with(|c| c.get())
}

fn boot_command() -> Arc<Durability> {
    let mut c = Catalog::new();
    c.add_table("t", 1);
    let db = Arc::new(Database::new(c));
    let storage = StorageSet::identical(1, DiskConfig::unthrottled("fig_alloc"));
    Durability::start(
        db,
        storage,
        DurabilityConfig {
            scheme: LogScheme::Command,
            num_loggers: 1,
            epoch_interval: Duration::from_millis(2),
            batch_epochs: 8,
            checkpoint_interval: None,
            checkpoint_threads: 1,
            fsync: false,
            ..Default::default()
        },
    )
}

fn one_write(key: u64) -> WriteRecord {
    WriteRecord {
        table: TableId::new(0),
        key,
        kind: WriteKind::Update,
        after: Some(Arc::new(Row::from([Value::Int(key as i64)]))),
        prev_ts: 0,
    }
}

/// (allocs/txn via arena, allocs/txn via per-record path).
fn measure_commit(txns: u64) -> (f64, f64) {
    let dur = boot_command();
    let we = dur.register_worker();
    let params = pacman_sproc::params([Value::Int(7), Value::Int(42)]);
    let writes = vec![one_write(7)];

    let mut per_record = 0u64;
    for i in 0..txns {
        let e = we.enter();
        let info = CommitInfo {
            ts: epoch_floor(e) | (i + 1),
            writes: writes.clone(),
            ops: 4,
        };
        let a0 = allocs_now();
        dur.log_commit(0, &info, ProcId::new(0), &params, false);
        per_record += allocs_now() - a0;
    }

    let mut wb = WorkerLogBuffer::new();
    let mut buffered = 0u64;
    for i in 0..txns {
        let e = we.peek();
        let a0 = allocs_now();
        dur.flush_before_ack(&mut wb, 0, e);
        let flush_cost = allocs_now() - a0;
        we.enter_at(e);
        let info = CommitInfo {
            ts: epoch_floor(e) | (txns + i + 1),
            writes: writes.clone(),
            ops: 4,
        };
        let a1 = allocs_now();
        dur.log_commit_buffered(&mut wb, 0, &info, ProcId::new(0), &params, false);
        buffered += flush_cost + (allocs_now() - a1);
    }
    dur.flush_worker(&mut wb, 0);
    dur.shutdown();
    (
        buffered as f64 / txns as f64,
        per_record as f64 / txns as f64,
    )
}

/// (bytes/record via view scan, bytes/record via owned decode).
fn measure_replay(records: u64) -> (f64, f64) {
    let storage = StorageSet::identical(1, DiskConfig::unthrottled("fig_alloc"));
    let mut buf = Vec::new();
    for i in 0..records {
        let rec = TxnLogRecord {
            ts: epoch_floor(1) | (i + 1),
            payload: LogPayload::Writes {
                writes: vec![one_write(i)],
                physical: false,
                adhoc: false,
            },
        };
        pacman_common::Encoder::encode(&rec, &mut buf);
    }
    storage.disk(0).append(&batch_name(0, 0), &buf);

    let b0 = bytes_now();
    let owned = read_merged_batch(&storage, 1, 0, u64::MAX, 0).unwrap();
    let owned_bytes = bytes_now() - b0;
    assert_eq!(owned.records.len() as u64, records);
    drop(owned);

    let b1 = bytes_now();
    let view = read_merged_batch_view(&storage, 1, 0, u64::MAX, 0).unwrap();
    let mut n = 0u64;
    for rec in view.iter() {
        for w in rec.writes().expect("tuple-level records") {
            std::hint::black_box(&w);
            n += 1;
        }
    }
    let view_bytes = bytes_now() - b1;
    assert_eq!(n, records);
    (
        view_bytes as f64 / records as f64,
        owned_bytes as f64 / records as f64,
    )
}

/// (allocs/txn, bytes/txn) for a read-only bank-audit transaction: three
/// reads plus a latch-free validating commit.
fn measure_read(txns: u64) -> (f64, f64) {
    let mut c = Catalog::new();
    c.add_table("acct", 1);
    let db = Database::new(c);
    const ACCTS: u64 = 64;
    for k in 0..ACCTS {
        db.seed_row(TableId::new(0), k, Row::from([Value::Int(100)]))
            .unwrap();
    }
    let t = TableId::new(0);

    let warmup = txns / 10;
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    for i in 0..warmup + txns {
        let a0 = allocs_now();
        let b0 = bytes_now();
        let mut txn = db.begin();
        let mut sum = 0i64;
        for j in 0..3 {
            sum += txn
                .read(t, (i + j) % ACCTS)
                .unwrap()
                .col(0)
                .as_int()
                .unwrap();
        }
        txn.commit().unwrap();
        std::hint::black_box(sum);
        if i >= warmup {
            allocs += allocs_now() - a0;
            bytes += bytes_now() - b0;
        }
    }
    (allocs as f64 / txns as f64, bytes as f64 / txns as f64)
}

/// (allocs/txn, bytes/txn) for a single-row read-modify-write
/// transaction through the pooled-scratch write path.
fn measure_write(txns: u64) -> (f64, f64) {
    let mut c = Catalog::new();
    c.add_table("acct", 1);
    let db = Database::new(c);
    const ACCTS: u64 = 64;
    for k in 0..ACCTS {
        db.seed_row(TableId::new(0), k, Row::from([Value::Int(100)]))
            .unwrap();
    }
    let t = TableId::new(0);

    // Warm until every chain's version list has hit its pruned steady
    // state (several installs per account), not just the txn scratch —
    // version-vec growth is a one-time cost, not per-txn traffic.
    let warmup = (txns / 10).max(ACCTS * 8);
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    for i in 0..warmup + txns {
        let a0 = allocs_now();
        let b0 = bytes_now();
        let mut txn = db.begin();
        let mut row = txn.read_for_update(t, i % ACCTS).unwrap();
        let v = row.col(0).as_int().unwrap();
        row.set_col(0, Value::Int(v + 1));
        row.stage();
        let info = txn.commit().unwrap();
        pacman_engine::recycle_commit_info(info);
        if i >= warmup {
            allocs += allocs_now() - a0;
            bytes += bytes_now() - b0;
        }
    }
    (allocs as f64 / txns as f64, bytes as f64 / txns as f64)
}

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "fig_alloc: allocator traffic on the zero-copy hot paths",
        "epoch arenas amortize commit allocations; views replay without decode-to-owned",
    );
    let txns: u64 = if opts.quick { 2_000 } else { 20_000 };
    let records: u64 = if opts.quick { 1_000 } else { 10_000 };

    let (arena_per_txn, record_per_txn) = measure_commit(txns);
    let (view_per_rec, owned_per_rec) = measure_replay(records);
    let (read_allocs, read_bytes) = measure_read(txns);
    let (write_allocs, write_bytes) = measure_write(txns);

    let widths = [26, 14, 14];
    print_row(
        &["path".into(), "arena/view".into(), "per-record".into()],
        &widths,
    );
    print_row(
        &[
            "commit allocs/txn".into(),
            format!("{arena_per_txn:.3}"),
            format!("{record_per_txn:.3}"),
        ],
        &widths,
    );
    print_row(
        &[
            "replay bytes/record".into(),
            format!("{view_per_rec:.0}"),
            format!("{owned_per_rec:.0}"),
        ],
        &widths,
    );
    print_row(
        &[
            "read allocs/txn".into(),
            format!("{read_allocs:.3}"),
            format!("({read_bytes:.0} B)"),
        ],
        &widths,
    );
    print_row(
        &[
            "write allocs/txn".into(),
            format!("{write_allocs:.3}"),
            format!("({write_bytes:.0} B)"),
        ],
        &widths,
    );

    assert!(
        arena_per_txn <= 2.0,
        "commit arena exceeded the allocation budget: {arena_per_txn:.3} allocs/txn"
    );
    assert!(
        read_allocs <= 1.0,
        "read-only txn exceeded the allocation budget: {read_allocs:.3} allocs/txn"
    );
    assert!(
        write_allocs <= 2.0,
        "update txn exceeded the allocation budget: {write_allocs:.3} allocs/txn"
    );
    assert!(
        view_per_rec < owned_per_rec,
        "view replay must copy fewer bytes than owned decode: {view_per_rec:.0} >= {owned_per_rec:.0}"
    );

    let reg = pacman_obs::registry();
    reg.gauge_f("bench.fig_alloc.commit_allocs_per_txn_arena")
        .set(arena_per_txn);
    reg.gauge_f("bench.fig_alloc.commit_allocs_per_txn_record")
        .set(record_per_txn);
    reg.gauge_f("bench.fig_alloc.replay_bytes_per_record_view")
        .set(view_per_rec);
    reg.gauge_f("bench.fig_alloc.replay_bytes_per_record_owned")
        .set(owned_per_rec);
    reg.gauge_f("bench.fig_alloc.read_allocs_per_txn")
        .set(read_allocs);
    reg.gauge_f("bench.fig_alloc.read_bytes_per_txn")
        .set(read_bytes);
    reg.gauge_f("bench.fig_alloc.write_allocs_per_txn")
        .set(write_allocs);
    reg.gauge_f("bench.fig_alloc.write_bytes_per_txn")
        .set(write_bytes);

    pacman_bench::finish_bin("fig_alloc");
}
