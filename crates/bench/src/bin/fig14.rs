//! Fig. 14: log recovery — pure log reloading (a) and overall duration (b)
//! for the five schemes across thread counts.

use pacman_bench::{
    banner, bench_tpcc, default_workers, prepare_crashed, recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 14 — log recovery (TPC-C)",
        "CLR is single-threaded and slowest (paper: 70 min, 18× slower than \
         CLR-P); PLR/LLR improve up to ~20 threads then regress under latch \
         contention; CLR-P scales with threads",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    // One crashed image per log type.
    let cl = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Command,
        secs,
        workers,
        0.0,
    );
    let ll = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Logical,
        secs,
        workers,
        0.0,
    );
    let pl = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Physical,
        secs,
        workers,
        0.0,
    );
    println!(
        "log volumes: CL {:.1} MB ({} txns), LL {:.1} MB, PL {:.1} MB",
        cl.log_bytes as f64 / 1e6,
        cl.committed,
        ll.log_bytes as f64 / 1e6,
        pl.log_bytes as f64 / 1e6
    );
    println!(
        "\n{:>8} {:>12} {:>14} {:>14} {:>10}",
        "threads", "scheme", "reload (s)", "overall (s)", "txns"
    );
    for threads in opts.thread_sweep() {
        for (crashed, scheme) in [
            (&pl, RecoveryScheme::Plr { latch: true }),
            (&ll, RecoveryScheme::Llr { latch: true }),
            (&ll, RecoveryScheme::LlrP),
            (&cl, RecoveryScheme::Clr),
            (
                &cl,
                RecoveryScheme::ClrP {
                    mode: ReplayMode::Pipelined,
                },
            ),
        ] {
            if scheme == RecoveryScheme::Clr && threads != 1 {
                continue; // CLR cannot use extra threads (that is the point)
            }
            let out = recover_checked(crashed, scheme, threads);
            println!(
                "{:>8} {:>12} {:>14.4} {:>14.4} {:>10}",
                threads,
                out.report.scheme,
                out.report.log_reload_secs,
                out.report.log_total_secs,
                out.report.txns
            );
        }
    }

    pacman_bench::finish_bin("fig14");
}
