//! Fig. 16: overall recovery performance (checkpoint + log stages) for all
//! five schemes on TPC-C and Smallbank, using all available threads.

use pacman_bench::{
    banner, bench_smallbank, bench_tpcc, capped_threads, default_workers, prepare_crashed,
    recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 16 — overall database recovery (checkpoint + log)",
        "CLR worst (single-threaded log replay); LLR-P best (parallel, \
         latch-free, write-only); CLR-P close behind LLR-P because it must \
         re-execute reads as well",
    );
    let threads = capped_threads(24);
    let secs = opts.run_secs();
    let workers = default_workers();
    for wl in ["tpcc", "smallbank"] {
        println!("\n--- {wl} ({threads} recovery threads) ---");
        println!(
            "{:>12} {:>16} {:>12} {:>12}",
            "scheme", "checkpoint (s)", "log (s)", "total (s)"
        );
        let (cl, ll, pl);
        match wl {
            "tpcc" => {
                cl = prepare_crashed(
                    &bench_tpcc(opts.quick),
                    LogScheme::Command,
                    secs,
                    workers,
                    0.0,
                );
                ll = prepare_crashed(
                    &bench_tpcc(opts.quick),
                    LogScheme::Logical,
                    secs,
                    workers,
                    0.0,
                );
                pl = prepare_crashed(
                    &bench_tpcc(opts.quick),
                    LogScheme::Physical,
                    secs,
                    workers,
                    0.0,
                );
            }
            _ => {
                cl = prepare_crashed(
                    &bench_smallbank(opts.quick),
                    LogScheme::Command,
                    secs,
                    workers,
                    0.0,
                );
                ll = prepare_crashed(
                    &bench_smallbank(opts.quick),
                    LogScheme::Logical,
                    secs,
                    workers,
                    0.0,
                );
                pl = prepare_crashed(
                    &bench_smallbank(opts.quick),
                    LogScheme::Physical,
                    secs,
                    workers,
                    0.0,
                );
            }
        }
        for (crashed, scheme) in [
            (&pl, RecoveryScheme::Plr { latch: true }),
            (&ll, RecoveryScheme::Llr { latch: true }),
            (&ll, RecoveryScheme::LlrP),
            (&cl, RecoveryScheme::Clr),
            (
                &cl,
                RecoveryScheme::ClrP {
                    mode: ReplayMode::Pipelined,
                },
            ),
        ] {
            let t = if scheme == RecoveryScheme::Clr {
                1
            } else {
                threads
            };
            let out = recover_checked(crashed, scheme, t);
            println!(
                "{:>12} {:>16.4} {:>12.4} {:>12.4}",
                out.report.scheme,
                out.report.checkpoint_total_secs,
                out.report.log_total_secs,
                out.report.total_secs
            );
        }
    }

    pacman_bench::finish_bin("fig16");
}
