//! Fig. 21 (Appendix C): the global dependency graph of TPC-C produced by
//! PACMAN's static analysis (write procedures only; read-only procedures
//! generate no logs and are ignored, exactly as the paper notes).

use pacman_bench::banner;
use pacman_core::static_analysis::{GlobalGraph, LocalGraph};
use pacman_sproc::ProcRegistry;
use pacman_workloads::tpcc::procs;

fn main() {
    banner(
        "Fig. 21 — TPC-C global dependency graph",
        "NewOrder/Payment/Delivery slices interleave across blocks; slices \
         touching the same written tables (District, Customer, Stock, …) \
         share blocks",
    );
    // Logged procedures only (read-only ones produce no log records).
    let mut reg = ProcRegistry::new();
    reg.register(procs::new_order()).unwrap();
    reg.register(procs::payment()).unwrap();
    reg.register(procs::delivery(10)).unwrap();
    for p in reg.all() {
        let lg = LocalGraph::analyze(p);
        println!("{} -> {} slices", p.name, lg.len());
        for s in &lg.slices {
            let tables: Vec<String> = s
                .ops
                .iter()
                .map(|&o| format!("{}", p.ops[o].table))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            println!(
                "  slice {}: ops {:?} on tables {}",
                s.id,
                s.ops,
                tables.join(",")
            );
        }
    }
    let gdg = GlobalGraph::analyze(reg.all()).unwrap();
    println!("\n{}", gdg.pretty());
    println!("table ownership (ad-hoc dispatch map):");
    for (name, id) in [
        ("warehouse", pacman_workloads::tpcc::schema::WAREHOUSE),
        ("district", pacman_workloads::tpcc::schema::DISTRICT),
        ("customer", pacman_workloads::tpcc::schema::CUSTOMER),
        ("stock", pacman_workloads::tpcc::schema::STOCK),
        ("item", pacman_workloads::tpcc::schema::ITEM),
        ("order", pacman_workloads::tpcc::schema::ORDER),
    ] {
        match gdg.block_for_write(id) {
            Some(b) => println!("  {name:<10} -> B{}", b.0),
            None => println!("  {name:<10} -> read-only"),
        }
    }

    pacman_bench::finish_bin("fig21");
}
