//! fig_latency: end-to-end durability-latency attribution.
//!
//! Where does a committed transaction's latency go? The epoch span table
//! stamps every epoch at each lifecycle stage — first commit staged,
//! sealed, persisted (fsynced), ack signaled, shipped, standby applied —
//! and this binary turns those stamps into a per-stage breakdown:
//!
//! * **Phase A (commit attribution)**: a paced single worker commits
//!   roughly one transaction per epoch against a live primary, measuring
//!   true end-to-end commit latency (submit → durable-ack observed) per
//!   transaction. Pacing makes the epoch's `Staged` stamp coincide with
//!   the submit, so the stage transitions telescope: `seal_wait +
//!   persist + ack_delay ≈ end-to-end latency`. The binary *asserts*
//!   that the stage-sum accounts for the measured mean within 10% (plus
//!   a small absolute floor for 1-core scheduling noise) — the
//!   attribution must add up, or it is decoration.
//! * **Phase B (replication attribution)**: a crashed primary's image is
//!   shipped to a hot standby, populating the `wal.ship.lag` and
//!   `standby.apply_lag` stages — how far behind durability the
//!   replication pipeline runs.
//!
//! All distributions land in the registry (`wal.epoch.*`, `wal.ship.lag`,
//! `standby.apply_lag`, `driver.commit_latency_us`) and export through
//! the standard `--json` path; `scripts/bench_regress.py` gates the p99
//! commit latency across commits.

use pacman_bench::{
    banner, bench_disk, bench_smallbank, boot_with_config, capped_threads, print_row, ship_standby,
    BenchOpts,
};
use pacman_common::clock::epoch_of;
use pacman_common::Error;
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_engine::run_procedure_with_epoch;
use pacman_obs::HistoSummary;
use pacman_storage::StorageSet;
use pacman_wal::{DurabilityConfig, LogScheme};
use pacman_workloads::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Stage transitions that make up the primary's commit path. Their means
/// must telescope to the measured end-to-end commit latency.
const COMMIT_STAGES: [&str; 3] = [
    "wal.epoch.seal_wait",
    "wal.epoch.persist",
    "wal.epoch.ack_delay",
];

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "fig_latency: durability-latency attribution (epoch lifecycle spans)",
        "group commit trades latency for throughput; the span table shows where each epoch's time goes",
    );

    // --- Phase A: paced commit attribution on a live primary. ---
    let wl = bench_smallbank(opts.quick);
    let epoch_interval = Duration::from_millis(2);
    let sys = boot_with_config(
        &wl,
        StorageSet::identical(1, bench_disk()),
        DurabilityConfig {
            scheme: LogScheme::Command,
            num_loggers: 1,
            epoch_interval,
            batch_epochs: 16,
            checkpoint_interval: None,
            fsync: true,
            ..Default::default()
        },
    );
    let txns = if opts.quick { 100 } else { 400 };
    let worker = sys.durability.register_worker();
    let em = sys.durability.epoch_manager().clone();
    let pepoch = sys.durability.pepoch_arc();
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut latency = pacman_common::Histogram::new();
    let mut committed = 0u64;
    while committed < txns {
        worker.enter_at(worker.peek());
        let (pid, params) = wl.next_txn(&mut rng);
        let proc = sys.registry.get(pid).expect("registered procedure");
        let submit = Instant::now();
        let info = match run_procedure_with_epoch(&sys.db, proc, &params, || em.current()) {
            Ok(info) => info,
            Err(Error::TxnAborted(_)) => continue,
            Err(e) => panic!("workload execution error: {e}"),
        };
        if info.writes.is_empty() {
            continue; // read-only: never logged, nothing to attribute
        }
        // The unbuffered path hands the record straight to the logger and
        // stamps the epoch's `Staged` mark — under pacing, ≈ the submit.
        sys.durability.log_commit(0, &info, pid, &params, false);
        let epoch = epoch_of(info.ts);
        // Wait for durability while keeping this worker's ack advancing —
        // the logger cannot seal an epoch a registered worker still sits in.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pepoch.load(Ordering::Acquire) < epoch {
            worker.enter_at(worker.peek());
            assert!(Instant::now() < deadline, "commit never became durable");
            sys.durability
                .durable_signal()
                .wait_for(Duration::from_millis(1));
        }
        latency.record(submit.elapsed().as_micros() as u64);
        committed += 1;
        // Pace: let the epoch turn over so the next commit opens a fresh
        // epoch (and its Staged stamp is that commit's submit).
        std::thread::sleep(epoch_interval);
    }
    worker.retire();
    sys.durability.wait_durable(em.current().saturating_sub(1));
    pacman_obs::registry()
        .histogram("driver.commit_latency_us")
        .merge(&latency);
    sys.durability.shutdown();

    // Snapshot the commit-path stages *before* phase B adds its own
    // (unpaced) epochs to the same histograms.
    let spans = pacman_obs::spans();
    let commit_stages: Vec<(&str, HistoSummary)> = spans
        .summaries()
        .into_iter()
        .filter(|(name, _)| COMMIT_STAGES.contains(name))
        .collect();

    println!();
    println!("commit-path breakdown ({committed} paced txns, epoch = {epoch_interval:?}):");
    let widths = [24, 8, 10, 10, 10, 10];
    print_row(
        &["stage", "n", "mean us", "p50 us", "p95 us", "p99 us"].map(String::from),
        &widths,
    );
    let mut stage_sum_us = 0.0;
    for (name, s) in &commit_stages {
        stage_sum_us += s.mean;
        print_row(
            &[
                name.to_string(),
                s.count.to_string(),
                format!("{:.0}", s.mean),
                s.p50.to_string(),
                s.p95.to_string(),
                s.p99.to_string(),
            ],
            &widths,
        );
    }
    let e2e = HistoSummary::of(&latency);
    print_row(
        &[
            "= stage sum".into(),
            String::new(),
            format!("{stage_sum_us:.0}"),
            String::new(),
            String::new(),
            String::new(),
        ],
        &widths,
    );
    print_row(
        &[
            "end-to-end commit".into(),
            e2e.count.to_string(),
            format!("{:.0}", e2e.mean),
            e2e.p50.to_string(),
            e2e.p95.to_string(),
            e2e.p99.to_string(),
        ],
        &widths,
    );

    // The attribution must add up: the stage transitions telescope to
    // (ack − first-staged), and pacing aligned first-staged with submit.
    // The absolute floor absorbs scheduler noise on small shared boxes —
    // at bench epoch lengths the relative bound is the binding one.
    let gap = (e2e.mean - stage_sum_us).abs();
    let bound = (0.10 * e2e.mean).max(200.0);
    println!("attribution gap: {gap:.0} us (bound {bound:.0} us)");
    assert!(
        gap <= bound,
        "stage sum {stage_sum_us:.0} us does not account for end-to-end {:.0} us (gap {gap:.0} > {bound:.0})",
        e2e.mean
    );
    if spans.dropped() > 0 {
        println!(
            "note: {} late stage stamps dropped (evicted slots)",
            spans.dropped()
        );
    }

    // --- Phase B: replication attribution (ship + standby apply lag). ---
    let secs = if opts.quick { 1 } else { 2 };
    let crashed = pacman_bench::prepare_crashed(&wl, LogScheme::Command, secs, 1, 0.0);
    let threads = capped_threads(2);
    let (standby, catchup_secs) = ship_standby(
        &crashed,
        RecoveryScheme::ClrP {
            mode: ReplayMode::Pipelined,
        },
        threads,
        bench_disk(),
    );
    println!();
    println!(
        "replication: standby caught up in {catchup_secs:.2}s ({} batches)",
        standby.stats().applied_batches
    );
    for (name, s) in spans.summaries() {
        if name == "wal.ship.lag" || name == "standby.apply_lag" {
            println!(
                "  {name:<18} n={} mean={:.0}us p99={}us",
                s.count, s.mean, s.p99
            );
        }
    }
    drop(standby);

    pacman_bench::finish_bin("fig_latency");
}
