//! Fig. 20: log recovery time breakdown — useful work / data loading /
//! parameter checking / scheduling fractions across thread counts.

use pacman_bench::{
    banner, bench_tpcc, default_workers, prepare_crashed, recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 20 — CLR-P recovery time breakdown (TPC-C)",
        "at 40 threads scheduling grows to ~30% of recovery time; data \
         loading and parameter checking stay lightweight",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    let crashed = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Command,
        secs,
        workers,
        0.0,
    );
    println!(
        "{:>8} {:>12} {:>14} {:>18} {:>14}",
        "threads", "work %", "loading %", "param check %", "scheduling %"
    );
    for threads in opts.thread_sweep() {
        let out = recover_checked(
            &crashed,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
            threads,
        );
        let (w, l, p, s) = out.report.breakdown.fractions();
        println!(
            "{:>8} {:>12.1} {:>14.1} {:>18.1} {:>14.1}",
            threads,
            w * 100.0,
            l * 100.0,
            p * 100.0,
            s * 100.0
        );
    }

    pacman_bench::finish_bin("fig20");
}
