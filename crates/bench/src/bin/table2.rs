//! Table 2 (Appendix D): overall SSD write bandwidth per logging scheme,
//! one vs two devices, with and without checkpointing.

use pacman_bench::{banner, bench_tpcc, boot, default_workers, drive, BenchOpts};
use pacman_wal::LogScheme;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Table 2 — overall SSD bandwidth (TPC-C)",
        "tuple-level logging saturates one device (and benefits from a \
         second); command logging writes so little that bandwidth never \
         constrains it",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    println!(
        "{:>6} {:>8} {:>12} {:>16} {:>12}",
        "disks", "ckpt", "scheme", "write MB/s", "MB logged"
    );
    for disks in [1usize, 2] {
        for ckpt in [true, false] {
            for scheme in [LogScheme::Physical, LogScheme::Logical, LogScheme::Command] {
                let tpcc = bench_tpcc(opts.quick);
                let sys = boot(
                    &tpcc,
                    disks,
                    scheme,
                    ckpt.then(|| Duration::from_millis(800)),
                    true,
                );
                pacman_wal::run_checkpoint(&sys.db, &sys.storage, disks).unwrap();
                sys.storage.reset_stats();
                let r = drive(&sys, &tpcc, secs, workers, 0.0);
                let stats = sys.storage.total_stats();
                println!(
                    "{:>6} {:>8} {:>12} {:>16.1} {:>12.1}",
                    disks,
                    if ckpt { "on" } else { "off" },
                    scheme.label(),
                    stats.write_mb_per_sec(),
                    r.bytes_logged as f64 / 1e6
                );
                sys.durability.shutdown();
            }
        }
    }

    pacman_bench::finish_bin("table2");
}
