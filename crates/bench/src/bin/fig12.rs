//! Fig. 12: logging with ad-hoc transactions — throughput drops and
//! latency grows roughly linearly with the ad-hoc fraction under command
//! logging.

use pacman_bench::{banner, bench_tpcc, boot, default_workers, drive, BenchOpts};
use pacman_wal::LogScheme;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 12 — logging with ad-hoc transactions (TPC-C, CL)",
        "throughput decreases almost linearly in the ad-hoc fraction; at \
         100% the system effectively performs logical logging",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    let fractions: &[f64] = if opts.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "adhoc", "K tps", "mean lat us", "p99 lat us", "MB logged"
    );
    for &f in fractions {
        let tpcc = bench_tpcc(opts.quick);
        let sys = boot(
            &tpcc,
            2,
            LogScheme::Command,
            Some(Duration::from_millis(900)),
            true,
        );
        pacman_wal::run_checkpoint(&sys.db, &sys.storage, 2).unwrap();
        sys.storage.reset_stats();
        let r = drive(&sys, &tpcc, secs, workers, f);
        println!(
            "{:>8.1} {:>10.1} {:>12.0} {:>12} {:>12.1}",
            f,
            r.throughput / 1e3,
            r.latency_us.mean(),
            r.latency_us.quantile(0.99),
            r.bytes_logged as f64 / 1e6
        );
        sys.durability.shutdown();
    }

    pacman_bench::finish_bin("fig12");
}
