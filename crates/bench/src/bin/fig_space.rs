//! Durable-space lifecycle: bounded disk under continuous churn with a
//! deliberately lagging subscriber.
//!
//! The RetentionManager owns one reclaim frontier —
//! `min(checkpoint-covered epoch, all live holds)` — across log GC, chain
//! pruning and every pinned cursor. This harness drives a long churn with
//! an attached standby and walks the whole lifecycle:
//!
//! 1. **healthy** — the subscriber pumps continuously; its hold tracks
//!    the shipped frontier and the live log stays a small window above
//!    checkpoint coverage;
//! 2. **lagging** — the subscriber stops pumping while churn continues.
//!    Its hold pins the log until the retained bytes pass
//!    `max_subscriber_lag_bytes`, at which point the reclaim round
//!    *breaks* the hold and frees the space (bounded footprint, the
//!    ROADMAP's production-scale requirement);
//! 3. **recovered** — pumping resumes; the shipper self-heals with a
//!    `Reset` + fresh bootstrap cursor and the standby re-bootstraps onto
//!    the freshly shipped chain tip, catching back up to byte-exact.
//!
//! Asserts: at least one hold break and one completed re-bootstrap, real
//! reclamation, the live footprint bounded well below the total volume
//! ever logged, and the re-bootstrapped standby promoting to a
//! fingerprint equal to the never-lagged primary.
//!
//! `--quick` shrinks the run.

use pacman_bench::{
    banner, bench_smallbank, boot_with_config, capped_threads, default_workers, drive,
    full_speed_ssd, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::replication::{pump, start_standby, wire, StandbyConfig};
use pacman_storage::StorageSet;
use pacman_wal::{DurabilityConfig, LogScheme};
use pacman_workloads::Workload;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Durable-space lifecycle — bounded log+checkpoint footprint under churn",
        "one reclaim frontier (min of checkpoint coverage and live retention \
         holds) keeps disk bounded: a lagging subscriber pins space only up \
         to the lag bound, is then broken, and re-bootstraps to byte-exact",
    );
    let threads = capped_threads(8);
    let workers = default_workers();
    let secs: u64 = if opts.quick { 3 } else { 9 };
    let lag_bound: u64 = 128 * 1024;
    let ckpt_interval = Duration::from_millis(40);

    let sb = bench_smallbank(opts.quick);
    let sys = boot_with_config(
        &sb,
        StorageSet::identical(2, full_speed_ssd()),
        DurabilityConfig {
            checkpoint_interval: Some(ckpt_interval),
            checkpoint_incremental: true,
            max_subscriber_lag_bytes: Some(lag_bound),
            ..pacman_bench::bench_durability(LogScheme::Logical, 2)
        },
    );
    pacman_wal::run_checkpoint(&sys.db, &sys.storage, 2).expect("initial checkpoint");
    let shipper = sys.durability.shipper();
    let (tx, rx) = wire();
    let standby = start_standby(
        StorageSet::identical(2, full_speed_ssd()),
        &sb.catalog(),
        &sys.registry,
        &StandbyConfig {
            scheme: RecoveryScheme::LlrP,
            threads,
        },
        rx,
    )
    .expect("standby start");

    println!(
        "\nlag bound {} KB, checkpoint every {:?}, {} s churn (healthy / lagging / recovered thirds)\n",
        lag_bound / 1024,
        ckpt_interval,
        secs
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "phase", "live log KB", "live ckpt KB", "reclaimed KB", "logged KB", "broken", "resync"
    );

    let stop = AtomicBool::new(false);
    let print_sample = |phase: &str| {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8} {:>8}",
            phase,
            sys.durability.live_log_bytes() as f64 / 1e3,
            sys.durability.live_ckpt_bytes() as f64 / 1e3,
            sys.durability.reclaimed_log_bytes() as f64 / 1e3,
            sys.durability.bytes_logged() as f64 / 1e3,
            sys.durability.holds_broken(),
            standby.stats().rebootstraps,
        );
    };

    let (result, max_live_log, max_live_ckpt, post_break_min) = crossbeam::thread::scope(|scope| {
        let sampler = {
            let durability = std::sync::Arc::clone(&sys.durability);
            let shipper = &shipper;
            let link = &tx;
            let stop = &stop;
            let print_sample = &print_sample;
            scope.spawn(move |_| {
                let t0 = Instant::now();
                let phase_len = Duration::from_secs(secs.div_ceil(3));
                let mut max_live_log = 0u64;
                let mut max_live_ckpt = 0u64;
                // Smallest live-log sample observed after the first
                // break: proof the reclaim actually freed the space
                // the broken hold pinned.
                let mut post_break_min = u64::MAX;
                let mut last_printed = 0u8;
                while !stop.load(Ordering::Acquire) {
                    let elapsed = t0.elapsed();
                    let (phase, pumping) = if elapsed < phase_len {
                        ("healthy", true)
                    } else if elapsed < 2 * phase_len {
                        ("lagging", false)
                    } else {
                        ("recovered", true)
                    };
                    if pumping {
                        // A bootstrap pass can race a compaction's
                        // prune (transient): retry next heartbeat.
                        let _ = pump(shipper, durability.pepoch(), link);
                    }
                    let live_log = durability.live_log_bytes();
                    max_live_log = max_live_log.max(live_log);
                    max_live_ckpt = max_live_ckpt.max(durability.live_ckpt_bytes());
                    if durability.holds_broken() > 0 {
                        post_break_min = post_break_min.min(live_log);
                    }
                    let phase_idx = (elapsed.as_secs_f64() / phase_len.as_secs_f64()) as u8;
                    if phase_idx != last_printed {
                        last_printed = phase_idx;
                        print_sample(phase);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                (max_live_log, max_live_ckpt, post_break_min)
            })
        };
        let result = drive(&sys, &sb, secs, workers, 0.0);
        stop.store(true, Ordering::Release);
        let (a, b, c) = sampler.join().expect("sampler");
        (result, a, b, c)
    })
    .expect("churn scope");

    // Primary stops; drain the sealed tail (retrying the rare pump pass
    // that raced the final reclaim) and let the standby settle.
    sys.durability.shutdown();
    let final_pepoch = pacman_wal::pepoch::PepochHandle::read_persisted(sys.storage.disk(0));
    for attempt in 0.. {
        match pump(&shipper, final_pepoch, &tx) {
            Ok(_) => break,
            Err(e) if attempt < 100 => {
                eprintln!("tail drain retry: {e}");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("tail drain failed: {e}"),
        }
    }
    assert!(
        standby.wait_caught_up(final_pepoch, Duration::from_secs(60)),
        "standby never settled: {:?} / {:?}",
        standby.stats(),
        standby.error()
    );
    print_sample("settled");

    let bytes_logged = sys.durability.bytes_logged();
    let reclaimed = sys.durability.reclaimed_log_bytes();
    let broken = sys.durability.holds_broken();
    let stats = standby.stats();
    println!(
        "\nthroughput {:.0} tps | max live log {:.1} KB / logged {:.1} KB ({:.1}%) | \
         max live ckpt {:.1} KB | post-break min live log {:.1} KB | \
         holds broken {broken} | re-bootstraps {} (shipper resets {})",
        result.throughput,
        max_live_log as f64 / 1e3,
        bytes_logged as f64 / 1e3,
        100.0 * max_live_log as f64 / bytes_logged.max(1) as f64,
        max_live_ckpt as f64 / 1e3,
        post_break_min as f64 / 1e3,
        stats.rebootstraps,
        shipper.rebootstraps(),
    );

    // The lifecycle really happened: the lagging hold broke, space came
    // back, and the standby re-bootstrapped rather than erroring.
    assert!(broken >= 1, "the lagging subscriber hold never broke");
    assert!(
        stats.rebootstraps >= 1,
        "the broken standby never re-bootstrapped"
    );
    assert!(reclaimed > 0, "nothing was ever reclaimed");
    // Bounded footprint: the worst live log observed stays well below
    // the total volume logged (continuous churn would otherwise grow the
    // directory without bound), and after the first break the floor
    // returns under the bound plus a coverage window of churn.
    assert!(
        max_live_log < bytes_logged / 2,
        "live log {max_live_log} not bounded vs {bytes_logged} logged"
    );
    let window = (bytes_logged as f64 * 1.0 / secs as f64) as u64 + 256 * 1024;
    assert!(
        post_break_min <= lag_bound + window,
        "post-break live log {post_break_min} never returned under bound {lag_bound} + window {window}"
    );

    // Byte-exact convergence: the re-bootstrapped standby promotes to
    // exactly the never-lagged primary's state.
    let promoted = standby
        .promote(pacman_bench::bench_durability(LogScheme::Logical, 2))
        .expect("promote after re-bootstrap");
    assert_eq!(
        promoted.db.fingerprint(),
        sys.db.fingerprint(),
        "re-bootstrapped standby diverged from the never-lagged run"
    );
    promoted.durability.shutdown();
    println!(
        "\n(re-bootstrapped standby promoted byte-exact to the never-lagged primary; \
         live log/ckpt = StorageSet::live_bytes over the log/ and ckpt/ namespaces; \
         reclaimed/broken counters = Durability::reclaimed_log_bytes / holds_broken)"
    );

    pacman_bench::finish_bin("fig_space");
}
