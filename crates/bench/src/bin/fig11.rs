//! Fig. 11: throughput and latency during transaction processing under
//! PL / LL / CL / OFF, with one vs two simulated SSDs and periodic
//! checkpointing (checkpoint seconds flagged `*`).

use pacman_bench::{banner, bench_tpcc, boot, default_workers, drive, BenchOpts};
use pacman_wal::LogScheme;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 11 — logging overhead on transaction processing (TPC-C)",
        "with 1 SSD, PL/LL drop ~25% below OFF and spike in latency during \
         checkpoints; CL stays within ~6% of OFF; a 2nd SSD narrows but \
         does not close the gap",
    );
    let secs = opts.run_secs() + 2;
    let workers = default_workers();
    for disks in [1usize, 2] {
        println!("\n--- {disks} SSD(s), {workers} workers, {secs}s ---");
        println!(
            "{:<5} {:>10} {:>12} {:>12} {:>11}  timeline (K tps, * = checkpointing)",
            "mode", "K tps", "mean lat us", "p99 lat us", "MB logged"
        );
        for scheme in [
            LogScheme::Physical,
            LogScheme::Logical,
            LogScheme::Command,
            LogScheme::Off,
        ] {
            let tpcc = bench_tpcc(opts.quick);
            let sys = boot(
                &tpcc,
                disks,
                scheme,
                (scheme != LogScheme::Off).then(|| Duration::from_millis(900)),
                true,
            );
            pacman_wal::run_checkpoint(&sys.db, &sys.storage, disks).unwrap();
            sys.storage.reset_stats();
            let r = drive(&sys, &tpcc, secs, workers, 0.0);
            let series: Vec<String> = r
                .timeline
                .iter()
                .map(|s| {
                    format!(
                        "{:.1}{}",
                        s.commits as f64 / 1e3,
                        if s.checkpoint_active { "*" } else { "" }
                    )
                })
                .collect();
            println!(
                "{:<5} {:>10.1} {:>12.0} {:>12} {:>11.1}  [{}]",
                scheme.label(),
                r.throughput / 1e3,
                r.latency_us.mean(),
                r.latency_us.quantile(0.99),
                r.bytes_logged as f64 / 1e6,
                series.join(" ")
            );
            sys.durability.shutdown();
        }
    }

    pacman_bench::finish_bin("fig11");
}
