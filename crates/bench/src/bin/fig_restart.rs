//! Instant restart: offline recovery vs. online recovery with on-demand
//! replay, across CLR-P / LLR-P / ALR-P on the replay-cost-skewed TPC-C.
//!
//! Offline recovery acknowledges its first post-crash transaction only
//! after the *entire* log has replayed, so its time-to-first-commit is the
//! recovery wall time. Instant restart serves a transaction as soon as
//! the transaction's own static footprint (dependency-graph blocks for
//! command schemes, table shards for LLR-P) reaches its final state, with
//! waiting transactions prioritizing the replay of exactly those
//! partitions (Sauer & Härder's on-demand redo). For LLR-P the base image
//! itself streams in lazily: checkpoint shards load on background workers
//! during the session, wanted shards first, so admission gates on *shard
//! residency + replay watermark* rather than a blocking whole-snapshot
//! reload. The availability ramp — time-to-first-commit and
//! time-to-90%-throughput — is the measurement, plus a checkpoint-volume
//! table comparing incremental (chained) vs full checkpoint rounds.
//!
//! Full-speed device + loop-heavy mix: replay compute dominates reload,
//! which is the regime where serving during replay pays.
//!
//! `--quick` shrinks the run; `--scheme <name>` narrows to one scheme.

use pacman_bench::{
    banner, bench_tpcc, capped_threads, default_workers, full_speed_ssd, instant_restart,
    prepare_crashed_churn, prepare_crashed_on, recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;
use pacman_workloads::RampConfig;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    let only = BenchOpts::scheme_filter();
    banner(
        "Instant restart — offline recovery vs. online recovery + on-demand replay",
        "first new commit is acknowledged in a small fraction of the offline \
         recovery wall time; throughput ramps to steady state while replay \
         is still draining cold partitions",
    );
    let threads = capped_threads(24);
    let workers = default_workers();
    let secs = opts.run_secs();
    let tpcc = pacman_workloads::tpcc::Tpcc::new(bench_tpcc(opts.quick).cfg.skewed_restart());

    let configs: [(LogScheme, RecoveryScheme, &'static str); 3] = [
        (
            LogScheme::Command,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
            "CLR-P",
        ),
        (LogScheme::Logical, RecoveryScheme::LlrP, "LLR-P"),
        (
            LogScheme::Adaptive,
            RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            },
            "ALR-P",
        ),
    ];

    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "scheme",
        "txns",
        "offline (s)",
        "first (s)",
        "t90 (s)",
        "ratio",
        "gated",
        "od/bg ld",
        "steady tps"
    );
    for (log, rec, label) in configs {
        if let Some(o) = only {
            if o != log {
                continue;
            }
        }
        let crashed = prepare_crashed_on(&tpcc, log, secs, workers, 0.0, full_speed_ssd());
        // Offline baseline: the database is unavailable for the whole
        // recovery — time-to-first-commit = recovery wall time.
        let offline = recover_checked(&crashed, rec, threads);
        let offline_secs = offline.report.total_secs;

        // Instant restart on the same image: serve through the gate while
        // background workers replay, then extend the log (resumed epochs).
        let ramp_len = Duration::from_secs_f64((2.0 * offline_secs).clamp(1.0, 30.0));
        let run = instant_restart(
            &crashed,
            &tpcc,
            log,
            rec,
            threads,
            &RampConfig {
                workers,
                duration: ramp_len,
                ..RampConfig::default()
            },
        );
        let first = run.ramp.first_commit_secs.unwrap_or(f64::NAN);
        let ratio = first / offline_secs;
        println!(
            "{:>8} {:>10} {:>12.3} {:>12.3} {:>12} {:>9.0}% {:>10} {:>10} {:>10.0}",
            label,
            run.outcome.report.txns,
            offline_secs,
            first,
            run.ramp
                .t90_secs
                .map(|t| format!("{t:.3}"))
                .unwrap_or_else(|| "-".into()),
            ratio * 100.0,
            run.ramp.gated_admissions,
            format!(
                "{}/{}",
                run.outcome.report.ondemand_shard_loads, run.outcome.report.background_shard_loads
            ),
            run.ramp.steady_tps,
        );
        assert_eq!(
            run.outcome.report.txns, offline.report.txns,
            "{label}: online replayed a different transaction count"
        );
    }
    // Checkpoint volume: incremental (chained deltas) vs full snapshots
    // per round, same skewed write workload, aggressive interval. This is
    // the other half of the reload-bound story: the lazy reload shrinks
    // time-to-first-commit, the deltas shrink what each interval writes.
    let interval = Duration::from_millis(if opts.quick { 200 } else { 400 });
    println!("\ncheckpoint volume (periodic checkpointer, {interval:?} interval):");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>14} {:>8} {:>14}",
        "scheme", "rounds", "fulls", "Δ KB/round", "full KB/round", "Δ/full", "skipped/round"
    );
    for (log, label) in [
        (LogScheme::Logical, "LLR-P"),
        (LogScheme::Adaptive, "ALR-P"),
    ] {
        if let Some(o) = only {
            if o != log {
                continue;
            }
        }
        let inc =
            prepare_crashed_churn(&tpcc, log, secs, workers, full_speed_ssd(), interval, true);
        let full =
            prepare_crashed_churn(&tpcc, log, secs, workers, full_speed_ssd(), interval, false);
        let (inc_rounds, inc_fulls) = inc.ckpt_rounds;
        let (full_rounds, _) = full.ckpt_rounds;
        let inc_per = inc.ckpt_bytes_written as f64 / inc_rounds.max(1) as f64;
        let full_per = full.ckpt_bytes_written as f64 / full_rounds.max(1) as f64;
        println!(
            "{:>8} {:>8} {:>8} {:>14.1} {:>14.1} {:>7.0}% {:>14.1}",
            label,
            inc_rounds,
            inc_fulls,
            inc_per / 1e3,
            full_per / 1e3,
            inc_per / full_per.max(1.0) * 100.0,
            inc.ckpt_shards_skipped as f64 / inc_rounds.max(1) as f64,
        );
        // The skewed mix leaves most shards clean per interval: a delta
        // round must write measurably less than a full snapshot.
        if inc_rounds > inc_fulls && full_rounds > 0 {
            assert!(
                inc_per < full_per,
                "{label}: incremental rounds wrote {inc_per:.0} B/round vs full {full_per:.0}"
            );
        }
        // The chained image recovers to exactly the pre-crash state.
        let rec = match log {
            LogScheme::Logical => RecoveryScheme::LlrP,
            _ => RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            },
        };
        recover_checked(&inc, rec, threads);
    }

    println!(
        "\n(first = time-to-first-commit of the online session; ratio = first / offline wall; \
         gated = admissions that found their footprint still cold; od/bg ld = checkpoint \
         shards loaded on demand vs by the background sweep — nonzero only for LLR-P's \
         lazy reload)"
    );
    println!(
        "(CLR-P is the instant-restart story: command replay dominates its recovery, so \
         on-demand redo of a waiting footprint lands far ahead of the full wall. LLR-P now \
         streams its base image lazily — checkpoint shards load *during* the session, \
         wanted shards first — so a first commit no longer waits for full residency; its \
         floor is the log-read share, which on a single hardware thread still time-slices \
         against the serving workers and can push the ratio past 100%. ALR-P loads its \
         base eagerly — command records re-execute reads — but through the same parallel \
         chain-aware loader.)"
    );

    pacman_bench::finish_bin("fig_restart");
}
