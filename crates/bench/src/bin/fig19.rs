//! Fig. 19: effectiveness of dynamic analysis — pure static analysis vs
//! synchronous (static + intra-batch) vs pipelined (full PACMAN) across
//! thread counts.

use pacman_bench::{
    banner, bench_tpcc, default_workers, prepare_crashed, recover_checked, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 19 — effectiveness of dynamic analysis (TPC-C, CLR-P)",
        "synchronous execution is ~4× faster than pure static analysis at \
         full thread count; pipelined execution improves it further",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    let crashed = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Command,
        secs,
        workers,
        0.0,
    );
    println!("replaying {} txns", crashed.committed);
    println!(
        "\n{:>8} {:>16} {:>16} {:>16}",
        "threads", "pure static (s)", "synchronous (s)", "pipelined (s)"
    );
    for threads in opts.thread_sweep() {
        let mut row = Vec::new();
        for mode in [
            ReplayMode::PureStatic,
            ReplayMode::Synchronous,
            ReplayMode::Pipelined,
        ] {
            let out = recover_checked(&crashed, RecoveryScheme::ClrP { mode }, threads);
            row.push(out.report.log_total_secs);
        }
        println!(
            "{:>8} {:>16.4} {:>16.4} {:>16.4}",
            threads, row[0], row[1], row[2]
        );
    }

    pacman_bench::finish_bin("fig19");
}
