//! Fig. 18: effectiveness of static analysis — PACMAN's slice
//! decomposition vs the transaction-chopping baseline, dynamic analysis
//! disabled (pure-static replay), 1-8 threads.

use pacman_bench::{banner, bench_tpcc, default_workers, prepare_crashed, BenchOpts};
use pacman_core::metrics::RecoveryMetrics;
use pacman_core::recovery::{clr_p, LogInventory};
use pacman_core::runtime::ReplayMode;
use pacman_core::static_analysis::{ChoppingGraph, GlobalGraph};
use pacman_engine::Database;
use pacman_wal::LogScheme;
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 18 — static analysis vs transaction chopping (dynamic analysis off)",
        "PACMAN's finer slices beat chopping at every thread count; both \
         plateau after ~3 threads because only coarse block parallelism is \
         available without dynamic analysis",
    );
    let secs = opts.run_secs();
    let workers = default_workers();
    let crashed = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Command,
        secs,
        workers,
        0.0,
    );
    let procs = crashed.registry.all();
    let pacman_gdg = Arc::new(GlobalGraph::analyze(procs).unwrap());
    let chop = ChoppingGraph::analyze(procs);
    let chop_gdg = Arc::new(GlobalGraph::analyze_decomposition(procs, &chop.pieces).unwrap());
    println!(
        "decomposition: PACMAN {} blocks / {} slices; chopping {} blocks / {} pieces",
        pacman_gdg.num_blocks(),
        procs
            .iter()
            .map(|p| pacman_core::static_analysis::LocalGraph::analyze(p).len())
            .sum::<usize>(),
        chop_gdg.num_blocks(),
        chop.total_pieces()
    );
    println!(
        "\n{:>8} {:>18} {:>22}",
        "threads", "PACMAN static (s)", "txn chopping (s)"
    );
    let sweep: Vec<usize> = opts
        .thread_sweep()
        .into_iter()
        .filter(|&t| t <= 8)
        .collect();
    let inventory = LogInventory::scan(&crashed.storage);
    for threads in sweep {
        let mut times = Vec::new();
        for gdg in [&pacman_gdg, &chop_gdg] {
            let db = Arc::new(Database::new(crashed.catalog.clone()));
            // Restore the checkpoint first (not timed here; Fig. 18 is
            // about log replay).
            let chain = pacman_wal::read_chain(&crashed.storage).unwrap().unwrap();
            let ckpt_ts = chain.ts();
            pacman_core::recovery::checkpoint::recover_checkpoint_chain(
                &crashed.storage,
                &chain,
                threads,
                pacman_core::recovery::checkpoint::CheckpointTarget::Tables(&db),
            )
            .unwrap();
            let metrics = Arc::new(RecoveryMetrics::new());
            let r = clr_p::recover_log(
                &crashed.storage,
                &inventory,
                &db,
                gdg,
                &crashed.registry,
                threads,
                ReplayMode::PureStatic,
                u64::MAX,
                ckpt_ts,
                &metrics,
            )
            .unwrap();
            assert_eq!(db.fingerprint(), crashed.reference, "wrong state");
            times.push(r.total.as_secs_f64());
        }
        println!("{:>8} {:>18.4} {:>22.4}", threads, times[0], times[1]);
    }

    pacman_bench::finish_bin("fig18");
}
