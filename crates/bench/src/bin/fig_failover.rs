//! Hot-standby failover: promote-to-first-commit vs. cold online
//! recovery on the same crash point, plus apply-lag vs. offered load.
//!
//! Cold restart (fig_restart's best case) must re-read and replay the
//! whole surviving log before the last partition is final; even with
//! on-demand redo the first commit waits for its footprint's backlog. A
//! hot standby has already applied that backlog *continuously* while the
//! primary was alive, so failover is an epoch drain: ship the sealed
//! tail, finish the in-flight apply batches, reopen the shipped log for
//! writing. The measurement is time from "declare failover" to the first
//! acknowledged commit on the promoted node, against the cold
//! `recover_online` first-commit wall on the identical image.
//!
//! The second table runs a *live* primary at varying offered load with a
//! standby attached over the wire, sampling the standby's replication
//! lag (apply batches + bytes behind) — the cost of staying seconds from
//! promotable. On this container's single hardware thread the worker
//! sweep degrades to one honest point (see `default_workers`).
//!
//! `--quick` shrinks the run; `--scheme <name>` narrows to one scheme.

use pacman_bench::{
    banner, bench_smallbank, bench_tpcc, boot_with_config, capped_threads, default_workers, drive,
    full_speed_ssd, instant_restart, prepare_crashed_on, ship_standby, BenchOpts,
};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::replication::{pump, start_standby, wire, StandbyConfig};
use pacman_core::runtime::ReplayMode;
use pacman_storage::StorageSet;
use pacman_wal::LogScheme;
use pacman_workloads::{run_ramp, RampConfig, Workload};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    let only = BenchOpts::scheme_filter();
    banner(
        "Hot-standby failover — promote-to-first-commit vs. cold online recovery",
        "a continuously-applying standby promotes in an epoch drain: its first \
         post-failover commit lands in a small fraction of even the gated \
         online-recovery wall on the same crash point",
    );
    let threads = capped_threads(24);
    let workers = default_workers();
    let secs = opts.run_secs();
    let tpcc = pacman_workloads::tpcc::Tpcc::new(bench_tpcc(opts.quick).cfg.skewed_restart());

    let configs: [(LogScheme, RecoveryScheme, &'static str); 3] = [
        (
            LogScheme::Command,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
            "CLR-P",
        ),
        (LogScheme::Logical, RecoveryScheme::LlrP, "LLR-P"),
        (
            LogScheme::Adaptive,
            RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            },
            "ALR-P",
        ),
    ];

    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "scheme",
        "txns",
        "cold (s)",
        "promote (s)",
        "first (s)",
        "ratio",
        "shipped KB",
        "applied KB"
    );
    for (log, rec, label) in configs {
        if let Some(o) = only {
            if o != log {
                continue;
            }
        }
        let crashed = prepare_crashed_on(&tpcc, log, secs, workers, 0.0, full_speed_ssd());

        // Hot path first (the shipper only reads the crashed image): a
        // standby attaches, catches up, and the primary "dies" — promote.
        let (standby, _catchup) = ship_standby(&crashed, rec, threads, full_speed_ssd());
        let stats = standby.stats();
        assert_eq!(stats.lag_batches, 0, "{label}: promote from lag 0");
        let promoted = standby
            .promote(pacman_bench::bench_durability(log, 2))
            .unwrap_or_else(|e| panic!("{label}: promote failed: {e}"));
        // The acceptance bar: a promoted standby is byte-exact with the
        // never-failed (graceful-stop) run on all three schemes.
        assert_eq!(
            promoted.db.fingerprint(),
            crashed.reference,
            "{label}: promoted standby diverged from the never-failed run"
        );
        let ramp_hot = run_ramp(
            &promoted.db,
            &tpcc,
            &crashed.registry,
            &promoted.durability,
            None,
            &RampConfig {
                workers,
                duration: Duration::from_millis(500),
                ..RampConfig::default()
            },
        );
        promoted.durability.shutdown();
        let hot_first =
            promoted.report.promote_secs + ramp_hot.first_commit_secs.unwrap_or(f64::NAN);

        // Cold baseline on the same image: online recovery with
        // on-demand replay (the PR 2/3 path — already far better than
        // offline). This mutates the image (resumed logging), hence last.
        let cold = instant_restart(
            &crashed,
            &tpcc,
            log,
            rec,
            threads,
            &RampConfig {
                workers,
                duration: Duration::from_secs(2),
                ..RampConfig::default()
            },
        );
        let cold_first = cold.ramp.first_commit_secs.unwrap_or(f64::NAN);
        let ratio = hot_first / cold_first;

        println!(
            "{:>8} {:>10} {:>12.3} {:>12.4} {:>12.4} {:>7.0}% {:>12.1} {:>12.1}",
            label,
            promoted.report.txns,
            cold_first,
            promoted.report.promote_secs,
            hot_first,
            ratio * 100.0,
            promoted.report.received_log_bytes as f64 / 1e3,
            stats.applied_log_bytes as f64 / 1e3,
        );
        assert!(
            hot_first < 0.5 * cold_first,
            "{label}: promote-to-first-commit {hot_first:.4}s did not beat half the cold \
             online first-commit wall {cold_first:.3}s"
        );
    }

    // Apply-lag vs offered load: a live primary ships continuously while
    // a standby applies; the sampled lag is the distance-from-promotable.
    println!("\napply lag vs offered load (live primary, LLR-P standby, Smallbank):");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "workers", "offered tps", "shipped KB", "max lag", "mean lag", "lag KB max", "drain (s)"
    );
    let sweep: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&w| w <= default_workers())
        .collect();
    for load_workers in sweep {
        let sb = bench_smallbank(opts.quick);
        let sys = boot_with_config(
            &sb,
            StorageSet::identical(2, full_speed_ssd()),
            pacman_bench::bench_durability(LogScheme::Logical, 2),
        );
        pacman_wal::run_checkpoint(&sys.db, &sys.storage, 2).expect("initial checkpoint");
        let shipper = sys.durability.shipper();
        let (tx, rx) = wire();
        let standby = start_standby(
            StorageSet::identical(2, full_speed_ssd()),
            &sb.catalog(),
            &sys.registry,
            &StandbyConfig {
                scheme: RecoveryScheme::LlrP,
                threads,
            },
            rx,
        )
        .expect("standby start");

        let stop = AtomicBool::new(false);
        let (result, max_lag, mean_lag, max_lag_bytes) = crossbeam::thread::scope(|scope| {
            // Pump + lag sampler thread (heartbeat cadence: 2 ms).
            let sampler = {
                let durability = std::sync::Arc::clone(&sys.durability);
                let shipper = &shipper;
                let link = &tx;
                let standby = &standby;
                let stop = &stop;
                scope.spawn(move |_| {
                    let mut max_lag = 0u64;
                    let mut lag_sum = 0u64;
                    let mut samples = 0u64;
                    let mut max_lag_bytes = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        pump(shipper, durability.pepoch(), link).expect("pump");
                        let s = standby.stats();
                        max_lag = max_lag.max(s.lag_batches);
                        max_lag_bytes = max_lag_bytes
                            .max(s.received_log_bytes.saturating_sub(s.applied_log_bytes));
                        lag_sum += s.lag_batches;
                        samples += 1;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    (
                        max_lag,
                        lag_sum as f64 / samples.max(1) as f64,
                        max_lag_bytes,
                    )
                })
            };
            let result = drive(&sys, &sb, secs, load_workers, 0.0);
            stop.store(true, Ordering::Release);
            let (max_lag, mean_lag, max_lag_bytes) = sampler.join().expect("sampler");
            (result, max_lag, mean_lag, max_lag_bytes)
        })
        .expect("lag scope");

        // Primary stops; drain the sealed tail through the same cursor
        // and measure how long the standby takes to settle at lag 0.
        sys.durability.shutdown();
        let t0 = std::time::Instant::now();
        let final_pepoch = pacman_wal::pepoch::PepochHandle::read_persisted(sys.storage.disk(0));
        pump(&shipper, final_pepoch, &tx).expect("tail drain");
        let caught = standby.wait_caught_up(final_pepoch, Duration::from_secs(30));
        assert!(
            caught,
            "standby failed to settle ({:?} / {:?})",
            standby.stats(),
            standby.error()
        );
        let drain = t0.elapsed().as_secs_f64();

        println!(
            "{:>8} {:>12.0} {:>12.1} {:>10} {:>10.2} {:>12.1} {:>12.3}",
            load_workers,
            result.throughput,
            sys.durability.shipped_bytes() as f64 / 1e3,
            max_lag,
            mean_lag,
            max_lag_bytes as f64 / 1e3,
            drain,
        );
        drop(standby);
    }

    println!(
        "\n(cold = first acknowledged commit of a cold `recover_online` session on the same \
         image — itself gated + on-demand, i.e. the strongest single-node baseline; promote = \
         tail drain + apply finish + log reopen; first = promote + first acknowledged commit; \
         shipped/applied KB = the Durability ship counters vs the standby's applied counters; \
         lag = apply batches behind the shipped frontier while the primary serves load)"
    );

    pacman_bench::finish_bin("fig_failover");
}
