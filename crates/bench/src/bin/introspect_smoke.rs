//! Lifecycle smoke of the live introspection endpoint: boot a primary
//! with the endpoint enabled, drive a few transactions, then speak the
//! line protocol over real TCP — `metrics`, `health`, `spans` — and
//! verify the responses parse. This is what CI runs; it fails loudly if
//! the endpoint ever stops serving or the protocol drifts from
//! `docs/OBSERVABILITY.md`.

use pacman_bench::{banner, bench_smallbank, boot_with_config, drive, BenchOpts};
use pacman_storage::StorageSet;
use pacman_wal::{DurabilityConfig, LogScheme};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Send one command, collect response lines up to the `.` terminator.
fn query(addr: std::net::SocketAddr, cmd: &str) -> Vec<String> {
    let mut s = TcpStream::connect(addr).expect("connect to introspect endpoint");
    s.write_all(format!("{cmd}\n").as_bytes()).expect("send");
    let mut lines = Vec::new();
    for line in BufReader::new(s.try_clone().expect("clone stream")).lines() {
        let line = line.expect("read response line");
        if line == "." {
            return lines;
        }
        lines.push(line);
    }
    panic!("connection closed before `.` terminator; got {lines:?}");
}

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "introspect_smoke: live introspection endpoint over TCP",
        "operators debug a stalled durability pipeline without stopping it",
    );

    let wl = bench_smallbank(true);
    let sys = boot_with_config(
        &wl,
        StorageSet::identical(1, pacman_bench::bench_disk()),
        DurabilityConfig {
            scheme: LogScheme::Command,
            num_loggers: 1,
            epoch_interval: Duration::from_millis(2),
            batch_epochs: 16,
            introspect_addr: Some("127.0.0.1:0".into()),
            ..Default::default()
        },
    );
    let addr = sys
        .durability
        .introspect_addr()
        .expect("endpoint enabled in config must be serving");
    println!("endpoint: {addr}");

    let secs = if opts.quick { 1 } else { 2 };
    drive(&sys, &wl, secs, 1, 0.0);

    // `metrics`: the registry table, which must carry the commit metrics
    // the drive just produced.
    let metrics = query(addr, "metrics");
    assert!(
        metrics
            .iter()
            .any(|l| l.contains("driver.commit_latency_us")),
        "metrics response misses driver histograms: {metrics:?}"
    );

    // `metrics json`: one JSON document on one line.
    let json = query(addr, "metrics json");
    assert_eq!(json.len(), 1, "json must render on one line");
    assert!(
        json[0].starts_with('{') && json[0].contains("\"wal.log.bytes_logged\""),
        "json response malformed"
    );

    // `health`: parseable verdict line; a clean run must not be stalled.
    let health = query(addr, "health");
    assert!(
        health[0].starts_with("health: ok"),
        "clean run reads as stalled: {health:?}"
    );
    assert!(
        health.iter().any(|l| l.contains("seal")),
        "built-in seal probe missing: {health:?}"
    );

    // `spans`: stage frontiers must have moved with the drive.
    let spans = query(addr, "spans");
    assert!(
        spans.iter().any(|l| l.contains("sealed")),
        "span render misses stages: {spans:?}"
    );

    // Unknown commands answer with an error (and never hang the client).
    let err = query(addr, "definitely-not-a-command");
    assert!(err[0].starts_with("error: unknown command"), "{err:?}");

    sys.durability.shutdown();
    assert!(
        sys.durability.introspect_addr().is_none(),
        "shutdown must stop the endpoint"
    );
    println!("introspect endpoint OK ({} metric lines)", metrics.len());
}
