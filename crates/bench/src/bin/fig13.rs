//! Fig. 13: checkpoint recovery — pure file reloading (a) and overall
//! duration (b) per scheme across thread counts. PLR restores records
//! only (indexes deferred), so its overall time is the lowest.

use pacman_bench::{banner, bench_tpcc, prepare_crashed, recover_checked, BenchOpts};
use pacman_core::recovery::RecoveryScheme;
use pacman_core::runtime::ReplayMode;
use pacman_wal::LogScheme;

fn main() {
    let opts = BenchOpts::from_args();
    banner(
        "Fig. 13 — checkpoint recovery (TPC-C)",
        "(a) all schemes reload at device bandwidth; (b) PLR finishes the \
         checkpoint stage fastest because index construction is deferred \
         to log recovery",
    );
    // A checkpoint with (almost) no log tail isolates the checkpoint stage.
    let crashed = prepare_crashed(
        &bench_tpcc(opts.quick),
        LogScheme::Command,
        0, // no transactions: the initial checkpoint is the whole state
        2,
        0.0,
    );
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "threads", "scheme", "reload (s)", "overall (s)", "tuples"
    );
    for threads in opts.thread_sweep() {
        for scheme in [
            RecoveryScheme::Plr { latch: true },
            RecoveryScheme::Llr { latch: true },
            RecoveryScheme::LlrP,
            RecoveryScheme::Clr,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
        ] {
            let out = recover_checked(&crashed, scheme, threads);
            println!(
                "{:>8} {:>12} {:>14.4} {:>14.4} {:>12}",
                threads,
                out.report.scheme,
                out.report.checkpoint_reload_secs,
                out.report.checkpoint_total_secs,
                out.report.checkpoint_tuples
            );
        }
    }
    println!("\n(PLR's 'overall' excludes its deferred index build, which Fig. 14 charges to log recovery)");

    pacman_bench::finish_bin("fig13");
}
