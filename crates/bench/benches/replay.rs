//! Criterion: recovery replay throughput — serial CLR-style re-execution
//! vs PACMAN piece execution, per transaction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pacman_common::{Row, TableId, Value};
use pacman_core::runtime::exec::replay_record_serial;
use pacman_engine::Database;
use pacman_sproc::ProcRegistry;
use pacman_wal::{LogPayload, TxnLogRecord};
use pacman_workloads::bank::{Bank, TRANSFER};
use pacman_workloads::Workload;

fn setup() -> (Database, ProcRegistry) {
    let bank = Bank {
        accounts: 4096,
        ..Bank::default()
    };
    let db = Database::new(bank.catalog());
    bank.load(&db);
    (db, bank.registry())
}

fn bench_replay(c: &mut Criterion) {
    let (db, reg) = setup();
    let mut g = c.benchmark_group("replay");
    g.throughput(Throughput::Elements(1));
    let mut ts = 1u64;
    g.bench_function("clr_reexecute_transfer", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 2) % 4096;
            ts += 1;
            let rec = TxnLogRecord {
                ts,
                payload: LogPayload::Command {
                    proc: TRANSFER,
                    params: vec![Value::Int(k as i64), Value::Int(1)].into(),
                },
            };
            replay_record_serial(&db, &reg, black_box(&rec)).unwrap()
        })
    });
    g.bench_function("llrp_install_write", |b| {
        let t = TableId::new(1);
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 4096;
            ts += 1;
            db.table(t)
                .unwrap()
                .get_or_create(k)
                .install_lww(ts, Some(std::sync::Arc::new(Row::from([Value::Int(7)]))));
            black_box(k)
        })
    });
    g.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_replay
}
criterion_main!(benches);
