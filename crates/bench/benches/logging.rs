//! Criterion: per-commit serialization cost of the three logging schemes
//! (the worker-side overhead §6.1.1 attributes tuple-level logging's
//! throughput gap to).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pacman_common::{Encoder, ProcId, Row, TableId, Value};
use pacman_engine::{WriteKind, WriteRecord};
use pacman_wal::{LogPayload, TxnLogRecord};

fn write_set(n: usize, payload: usize) -> Vec<WriteRecord> {
    let pad = "x".repeat(payload);
    (0..n)
        .map(|i| WriteRecord {
            table: TableId::new(1),
            key: i as u64,
            kind: WriteKind::Update,
            after: Some(std::sync::Arc::new(Row::from([
                Value::Float(9.5),
                Value::Int(3),
                Value::str(&pad),
            ]))),
            prev_ts: 42,
        })
        .collect()
}

fn bench_logging(c: &mut Criterion) {
    let writes = write_set(12, 200); // a NewOrder-sized write set
    let params: pacman_sproc::Params = (0..34).map(Value::Int).collect::<Vec<_>>().into();
    let mut g = c.benchmark_group("logging_serialize");
    let cases: Vec<(&str, TxnLogRecord)> = vec![
        (
            "CL",
            TxnLogRecord {
                ts: 1,
                payload: LogPayload::Command {
                    proc: ProcId::new(0),
                    params,
                },
            },
        ),
        (
            "LL",
            TxnLogRecord {
                ts: 1,
                payload: LogPayload::Writes {
                    writes: writes.clone(),
                    physical: false,
                    adhoc: false,
                },
            },
        ),
        (
            "PL",
            TxnLogRecord {
                ts: 1,
                payload: LogPayload::Writes {
                    writes,
                    physical: true,
                    adhoc: false,
                },
            },
        ),
    ];
    for (name, rec) in cases {
        let size = rec.to_bytes().len();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{name}_{size}B"), |b| {
            let mut buf = Vec::with_capacity(size);
            b.iter(|| {
                buf.clear();
                black_box(&rec).encode(&mut buf);
                black_box(buf.len())
            })
        });
    }
    g.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_logging
}
criterion_main!(benches);
