//! Criterion: engine primitives — index lookups, OCC read-modify-write
//! commits, and snapshot scans.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pacman_common::{Row, TableId, Value};
use pacman_engine::{Catalog, Database};

fn db(rows: u64) -> Database {
    let mut c = Catalog::new();
    c.add_table("t", 2);
    let db = Database::new(c);
    for k in 0..rows {
        db.seed_row(
            TableId::new(0),
            k,
            Row::from([Value::Int(k as i64), Value::str("pad-pad-pad")]),
        )
        .unwrap();
    }
    db
}

fn bench_engine(c: &mut Criterion) {
    let t = TableId::new(0);
    let database = db(100_000);
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("index_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(1)) % 100_000;
            black_box(database.table(t).unwrap().get(k))
        })
    });
    g.bench_function("occ_rmw_commit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            let mut txn = database.begin();
            let r = txn.read(t, k).unwrap();
            let v = r.col(0).as_int().unwrap();
            txn.write(t, k, r.with_col(0, Value::Int(v + 1))).unwrap();
            black_box(txn.commit().unwrap().ts)
        })
    });
    g.bench_function("snapshot_scan_100k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            database.table(t).unwrap().for_each_newest(|_, _, _| n += 1);
            black_box(n)
        })
    });
    g.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_engine
}
criterion_main!(benches);
