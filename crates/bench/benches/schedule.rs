//! Criterion: execution-schedule construction and dynamic analysis
//! (conflict-chain DAG) cost per batch — the "parameter checking" of
//! Fig. 20.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pacman_common::Value;
use pacman_core::dynamic::build_piece_dag;
use pacman_core::schedule::ExecutionSchedule;
use pacman_core::static_analysis::GlobalGraph;
use pacman_wal::{LogBatch, LogPayload, TxnLogRecord};
use pacman_workloads::bank::{Bank, TRANSFER};
use pacman_workloads::Workload;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

fn batch(n: usize, accounts: u64) -> LogBatch {
    let mut rng = SmallRng::seed_from_u64(1);
    LogBatch {
        index: 0,
        records: (0..n)
            .map(|i| TxnLogRecord {
                ts: (1u64 << 40) | (i as u64 + 1),
                payload: LogPayload::Command {
                    proc: TRANSFER,
                    params: vec![
                        Value::Int(rng.gen_range(0..accounts) as i64 & !1),
                        Value::Int(5),
                    ]
                    .into(),
                },
            })
            .collect(),
    }
}

fn bench_schedule(c: &mut Criterion) {
    let bank = Bank::default();
    let reg = bank.registry();
    let gdg = Arc::new(GlobalGraph::analyze(reg.all()).unwrap());
    let mut g = c.benchmark_group("schedule");
    for n in [64usize, 512] {
        let b = batch(n, 1024);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("build/{n}txn"), |bench| {
            bench.iter(|| black_box(ExecutionSchedule::build(&gdg, &reg, &b).unwrap()))
        });
        let schedule = ExecutionSchedule::build(&gdg, &reg, &b).unwrap();
        // Bind the Bα outputs so Bβ's key resolution succeeds, as it would
        // after the upstream piece-set ran.
        for (i, ctx) in schedule.txns.iter().enumerate() {
            ctx.vars
                .set(pacman_common::VarId::new(0), Value::Int((i % 7) as i64));
        }
        g.bench_function(format!("dynamic_dag/{n}txn"), |bench| {
            bench.iter(|| black_box(build_piece_dag(&schedule.piece_sets[1], &schedule.txns)))
        });
    }
    g.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_schedule
}
criterion_main!(benches);
