//! Criterion: compile-time static analysis cost (local graphs, the GDG,
//! and the chopping baseline) on the real workload procedure sets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pacman_core::static_analysis::{ChoppingGraph, GlobalGraph, LocalGraph};
use pacman_workloads::tpcc::procs;
use pacman_workloads::{smallbank::Smallbank, Workload};

fn bench_static(c: &mut Criterion) {
    let tpcc = procs::registry(10);
    let sb = Smallbank::default().registry();
    let mut g = c.benchmark_group("static_analysis");
    g.bench_function("local/tpcc_new_order", |b| {
        let p = procs::new_order();
        b.iter(|| black_box(LocalGraph::analyze(&p)))
    });
    g.bench_function("gdg/tpcc", |b| {
        b.iter(|| black_box(GlobalGraph::analyze(tpcc.all()).unwrap()))
    });
    g.bench_function("gdg/smallbank", |b| {
        b.iter(|| black_box(GlobalGraph::analyze(sb.all()).unwrap()))
    });
    g.bench_function("chopping/tpcc", |b| {
        b.iter(|| black_box(ChoppingGraph::analyze(tpcc.all())))
    });
    g.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_static
}
criterion_main!(benches);
