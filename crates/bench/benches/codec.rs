//! Criterion: log-record encode/decode throughput (the deserialization
//! cost inside "data loading", Fig. 20).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pacman_common::codec::Cursor;
use pacman_common::{Decoder, Encoder, ProcId, Row, TableId, Value};
use pacman_engine::{WriteKind, WriteRecord};
use pacman_wal::{LogPayload, TxnLogRecord};

fn command_record() -> TxnLogRecord {
    TxnLogRecord {
        ts: (7u64 << 40) | 12345,
        payload: LogPayload::Command {
            proc: ProcId::new(2),
            params: (0..12).map(Value::Int).collect::<Vec<_>>().into(),
        },
    }
}

fn logical_record(writes: usize) -> TxnLogRecord {
    TxnLogRecord {
        ts: (7u64 << 40) | 12345,
        payload: LogPayload::Writes {
            writes: (0..writes)
                .map(|i| WriteRecord {
                    table: TableId::new(2),
                    key: i as u64,
                    kind: WriteKind::Update,
                    after: Some(std::sync::Arc::new(Row::from([
                        Value::Float(1.5),
                        Value::Int(i as i64),
                        Value::str("payload-payload-payload-payload"),
                    ]))),
                    prev_ts: 7,
                })
                .collect(),
            physical: false,
            adhoc: false,
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for (name, rec) in [
        ("command", command_record()),
        ("logical_4w", logical_record(4)),
        ("logical_20w", logical_record(20)),
    ] {
        let bytes = rec.to_bytes();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode/{name}"), |b| {
            let mut buf = Vec::with_capacity(bytes.len());
            b.iter(|| {
                buf.clear();
                black_box(&rec).encode(&mut buf);
                black_box(buf.len())
            })
        });
        g.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| {
                let mut cur = Cursor::new(black_box(&bytes));
                black_box(TxnLogRecord::decode(&mut cur).unwrap())
            })
        });
    }
    g.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_codec
}
criterion_main!(benches);
