//! Hot-standby replication: continuous log shipping with live PACMAN
//! apply and instant failover.
//!
//! PRs 1–3 exploited dependency-graph replay *after* a crash (offline and
//! online recovery). This module keeps a second engine **continuously**
//! replaying the primary's log, so failure recovery degenerates to a
//! catch-up (Sauer & Härder's single-pass REDO argument) and the same
//! logs double as multi-node durability (Yao et al.):
//!
//! * the primary's [`pacman_wal::Durability`] exposes a framed,
//!   versioned ship stream ([`pacman_wal::ship`]) of sealed epochs and
//!   checkpoint-chain manifests;
//! * a [`Standby`] consumes that stream through a long-lived apply
//!   session that reuses the PACMAN machinery from online recovery — the
//!   [`pacman_engine::RecoveryGate`] now runs with a *moving* total, so
//!   per-block (CLR-P/ALR-P) or per-(table, shard) (LLR-P) watermarks
//!   measure **replication lag** instead of one-shot replay progress;
//! * the standby serves gated read-only transactions while applying: a
//!   read is admitted once its static footprint is caught up with
//!   everything shipped, and OCC validation protects it from races with
//!   concurrent installs;
//! * [`Standby::promote`] drains the shipped tail, finishes the apply
//!   session, and reopens the standby's own (shipped) log directory for
//!   resumed logging — the PR 2 `reopen` path — flipping it into a full
//!   read-write primary. Failover is an epoch drain, not a recovery.
//!
//! See `docs/REPLICATION.md` for the ship protocol, the lag-watermark
//! semantics, promote, and double-failure behavior.

pub mod standby;

pub use standby::{
    register_gate_probe, start_standby, PromotedPrimary, ReplicationStats, Standby, StandbyConfig,
    StandbyReport, StandbyState,
};

use pacman_common::{Encoder, Error, Result};
use pacman_wal::{LogShipper, ShipFrame};

/// The wire: an in-process framed byte channel. Every message is exactly
/// one encoded [`ShipFrame`]; the standby decodes (and rejects corrupt
/// frames) on its side, so the link carries bytes, not structs.
pub fn wire() -> (FrameSender, crossbeam::channel::Receiver<Vec<u8>>) {
    let (tx, rx) = crossbeam::channel::unbounded();
    (FrameSender { tx }, rx)
}

/// Sending half of a replication link.
#[derive(Clone)]
pub struct FrameSender {
    tx: crossbeam::channel::Sender<Vec<u8>>,
}

impl FrameSender {
    /// Encode and send one frame. Returns its wire size.
    pub fn send(&self, frame: &ShipFrame) -> Result<usize> {
        let bytes = frame.to_bytes();
        let len = bytes.len();
        self.tx
            .send(bytes)
            .map_err(|_| Error::Unknown("replication link closed".into()))?;
        Ok(len)
    }
}

/// Pump one shipper pass over a link: ship everything sealed up to
/// `pepoch`. Returns the number of frames sent. The primary side of a
/// replication heartbeat — call it periodically, and once more (with the
/// persisted pepoch) after the primary dies to drain the tail.
///
/// Delivery is transactional: the ship cursor only advances if every
/// frame reached the link, so a send failure loses nothing — the next
/// pump re-produces the stream from the same point, and the standby
/// dedups any redelivered record runs by file offset.
pub fn pump(shipper: &LogShipper, pepoch: u64, link: &FrameSender) -> Result<usize> {
    shipper.ship(pepoch, |f| link.send(f).map(|_| ()))
}
