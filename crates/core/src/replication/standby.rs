//! The standby engine: a database continuously applying a primary's
//! shipped log, promotable to a full primary in an epoch drain.
//!
//! The apply session mirrors `recover_online`'s structure, made
//! open-ended:
//!
//! * **command/mixed schemes** (CLR / CLR-P / ALR-P) feed each
//!   seal-delimited apply batch through [`crate::schedule::ExecutionSchedule`]
//!   into the PACMAN runtime ([`crate::runtime::run_replay_gated`]),
//!   whose per-block watermarks publish to the shared
//!   [`pacman_engine::RecoveryGate`];
//! * the **tuple scheme** (LLR-P) partitions each batch's after-images
//!   onto per-(table, shard) queues drained latch-free by a worker pool,
//!   publishing per-shard watermarks — the same shape as LLR-P online
//!   recovery, fed by the wire instead of a device scan.
//!
//! In both cases the gate's *total* is bumped to the shipped apply-batch
//! count before each batch is fed, so "partition final" continuously
//! means "caught up with everything shipped": the watermarks measure
//! replication lag, and the same [`GatedAdmission`] that gates admission
//! during online recovery now gates standby reads on footprint
//! freshness. Epoch timestamps give clean separation between apply
//! batches, so last-writer-wins installs make batch application
//! insensitive to within-batch arrival order per partition, and OCC read
//! validation protects read-only transactions racing the installs.

use crate::metrics::RecoveryMetrics;
use crate::recovery::checkpoint::{
    recover_checkpoint_chain, resync_checkpoint_chain, CheckpointTarget,
};
use crate::recovery::gate::{GateMap, GatedAdmission, ShardMap};
use crate::recovery::RecoveryScheme;
use crate::runtime::{run_replay_gated, ReplayMode};
use crate::schedule::ExecutionSchedule;
use crate::static_analysis::GlobalGraph;
use pacman_common::clock::epoch_floor;
use pacman_common::codec::Cursor;
use pacman_common::{Decoder, Error, ProcId, Result, Timestamp};
use pacman_engine::{
    run_procedure, AdmissionControl, Catalog, Database, RecoveryGate, WriteRecord,
};
use pacman_obs::{Counter as ObsCounter, TraceEvent};
use pacman_sproc::{Params, ProcRegistry};
use pacman_storage::StorageSet;
use pacman_wal::checkpoint::MANIFEST_FILE;
use pacman_wal::pepoch::PEPOCH_FILE;
use pacman_wal::{
    read_chain, Durability, DurabilityConfig, LogBatch, LogPayload, ResumeInfo, ShipFrame,
    TxnLogRecord,
};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Standby configuration.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// Apply scheme — must match the primary's log format: `ClrP`/`Clr`
    /// for command logs, `LlrP` for logical logs, `AlrP` for adaptive
    /// (mixed) logs. `Plr`/`Llr` have no partition watermark and are
    /// rejected, exactly as in `recover_online`.
    pub scheme: RecoveryScheme,
    /// Apply worker threads.
    pub threads: usize,
}

/// Lifecycle state of a standby.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandbyState {
    /// Consuming the stream; reads are gated on footprint freshness.
    Applying,
    /// The session hit an error (corrupt frame, apply failure); the gate
    /// was poisoned and the standby must be discarded.
    Failed,
}

/// Live replication counters (the lag metrics of `fig_failover`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicationStats {
    /// Seal-delimited apply batches shipped into the session.
    pub shipped_batches: u64,
    /// Apply batches fully applied (slowest partition's watermark).
    pub applied_batches: u64,
    /// `shipped - applied`: the replication lag in apply batches.
    pub lag_batches: u64,
    /// Log bytes received off the wire.
    pub received_log_bytes: u64,
    /// Log bytes whose apply batch is fully applied.
    pub applied_log_bytes: u64,
    /// Transactions fed into the apply session.
    pub txns: u64,
    /// The standby's durable frontier (highest shipped seal).
    pub pepoch: u64,
    /// Completed re-bootstraps: the primary broke this subscriber's
    /// cursor (bounded-lag retention) and the standby resynced its base
    /// image onto a freshly shipped chain tip.
    pub rebootstraps: u64,
}

/// What the apply session did by promote time.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandbyReport {
    /// Apply batches applied.
    pub batches: u64,
    /// Transactions applied.
    pub txns: u64,
    /// Command records re-executed.
    pub replayed_commands: u64,
    /// Tuple-level records installed as after-images.
    pub applied_writes: u64,
    /// Log bytes received off the wire.
    pub received_log_bytes: u64,
    /// Tuples restored from the bootstrap chain.
    pub checkpoint_tuples: u64,
    /// Wall seconds the promote drain took (tail drain + session finish).
    pub promote_secs: f64,
}

/// A promoted standby: a full read-write primary over the standby's own
/// (shipped) log directory.
pub struct PromotedPrimary {
    /// The live database.
    pub db: Arc<Database>,
    /// Resumed durability stack (the PR 2 `reopen` path over the shipped
    /// log: epoch numbering continues strictly past the applied frontier).
    pub durability: Arc<Durability>,
    /// What `reopen` found and resumed from.
    pub resume: ResumeInfo,
    /// Apply-session totals.
    pub report: StandbyReport,
}

struct StateInner {
    state: StandbyState,
    error: Option<Error>,
}

/// Shared standby counters/state.
struct Shared {
    state: Mutex<StateInner>,
    cv: Condvar,
    /// Drain-and-exit signal for the receiver.
    promote: AtomicBool,
    /// True until the stream head is processed (bootstrap chain loaded,
    /// or the first seal handled): reads must not be admitted against an
    /// empty or half-loaded base image just because the gate total is
    /// still 0.
    bootstrap_pending: AtomicBool,
    /// A [`ShipFrame::Reset`] arrived: the next shipped chain tip is a
    /// re-bootstrap base image to resync onto, not bookkeeping.
    resync_pending: AtomicBool,
    /// Completed re-bootstraps. These five are detached
    /// [`pacman_obs::Counter`] handles, bound into the global registry
    /// under `standby.*` names at session start.
    rebootstraps: ObsCounter,
    received_log_bytes: ObsCounter,
    txns: ObsCounter,
    commands: ObsCounter,
    writes: ObsCounter,
    max_ts: AtomicU64,
    pepoch: AtomicU64,
    /// Bootstrap chain coverage: shipped records at `ts <=` this are
    /// already in the base image and are skipped at feed time.
    after_ts: AtomicU64,
    ckpt_tuples: AtomicU64,
    /// Per fed-but-not-yet-applied batch seq: `(received log bytes,
    /// highest epoch in the batch)`. Drained into the metrics' applied
    /// counters (and the span table's `Applied` stage) as the apply
    /// frontier advances.
    batch_bytes: Mutex<BTreeMap<u64, (u64, u64)>>,
}

impl Shared {
    fn fail(&self, gate: &RecoveryGate, e: Error) {
        gate.fail();
        let mut st = self.state.lock();
        if st.error.is_none() {
            st.error = Some(e);
        }
        st.state = StandbyState::Failed;
        self.cv.notify_all();
    }
}

/// Per-shard apply state of the tuple scheme (LLR-P): the shared
/// recovery lanes plus the standby's frontier/done signals.
struct ShardApply {
    lanes: Vec<crate::recovery::shard_apply::ShardLane>,
    /// Highest batch seq fully enqueued.
    loaded: AtomicU64,
    /// No further batches will arrive (promote drain finished).
    done: AtomicBool,
    err: Mutex<Option<Error>>,
}

/// How the receiver hands apply batches to the running engine.
enum Feed {
    /// Command/mixed schemes: schedules into the PACMAN runtime.
    Sched {
        tx: crossbeam::channel::Sender<ExecutionSchedule>,
        gdg: Arc<GlobalGraph>,
        registry: ProcRegistry,
    },
    /// Tuple scheme: per-shard queues.
    Shards {
        state: Arc<ShardApply>,
        map: ShardMap,
    },
}

/// A hot standby consuming a primary's ship stream.
pub struct Standby {
    db: Arc<Database>,
    storage: StorageSet,
    registry: ProcRegistry,
    gate: Arc<RecoveryGate>,
    admission: Arc<GatedAdmission>,
    shared: Arc<Shared>,
    metrics: Arc<RecoveryMetrics>,
    recv_join: Option<JoinHandle<()>>,
    apply_joins: Vec<JoinHandle<()>>,
    shard_state: Option<Arc<ShardApply>>,
    /// This session's gate probe in the process-wide watchdog (removed on
    /// drop so a discarded standby cannot read as stalled forever).
    gate_probe: pacman_obs::ProbeId,
}

/// Register a stall-watchdog probe over a recovery/replication gate:
/// *work* is the batches fed (`total_batches`), *progress* the slowest
/// partition's applied watermark. The probe is inactive before the first
/// batch is fed and after the gate finished or failed — a poisoned gate
/// already dumped through its own hook; the watchdog's job is the silent
/// wedge where batches keep arriving but the watermark stops.
///
/// `start_standby` installs one per session (removed on [`Standby`] drop);
/// exposed for recovery drivers and tests that run a gate directly.
pub fn register_gate_probe(gate: &Arc<RecoveryGate>) -> pacman_obs::ProbeId {
    let gate = Arc::clone(gate);
    pacman_obs::watchdog().register("standby.gate", pacman_obs::StallKind::Gate, move || {
        if gate.is_complete() || gate.is_failed() {
            return None;
        }
        let total = gate.total_batches();
        if total == 0 {
            return None;
        }
        Some(pacman_obs::ProbeSample {
            work: total,
            progress: gate.min_watermark(),
        })
    })
}

/// Start a standby over its own (fresh or previously-shipped) `storage`,
/// consuming encoded [`ShipFrame`]s from `rx`. The first shipped chain
/// tip bootstraps the base image; a primary should therefore checkpoint
/// at least once (covering its initial load) before a standby attaches —
/// timestamp-0 seed rows are never logged, so the log alone cannot
/// reproduce them.
pub fn start_standby(
    storage: StorageSet,
    catalog: &Catalog,
    registry: &ProcRegistry,
    config: &StandbyConfig,
    rx: crossbeam::channel::Receiver<Vec<u8>>,
) -> Result<Standby> {
    if matches!(
        config.scheme,
        RecoveryScheme::Plr { .. } | RecoveryScheme::Llr { .. }
    ) {
        return Err(Error::InvalidConfig(format!(
            "standby apply is not defined for {}: no partition watermark to gate on",
            config.scheme.label()
        )));
    }
    let threads = config.threads.max(1);
    let db = Arc::new(Database::new(catalog.clone()));
    let metrics = Arc::new(RecoveryMetrics::new());

    // Gate + footprint map, as in `recover_online` — but the total starts
    // at 0 ("caught up with nothing shipped yet") and moves with every
    // seal, so admission tracks the shipped frontier. The tuple scheme's
    // shard numbering is built once and shared by the gate size, the
    // footprint map, and the apply lanes — one numbering, one truth.
    let gdg = Arc::new(GlobalGraph::analyze(registry.all())?);
    let mut session_shards = None;
    let (gate, map) = match config.scheme {
        RecoveryScheme::LlrP => {
            let shards = ShardMap::new(&db);
            let gate = RecoveryGate::new(shards.total());
            let map = GateMap::shards(Arc::clone(&db), shards.clone(), registry);
            session_shards = Some(shards);
            (gate, map)
        }
        _ => {
            let map = GateMap::blocks(&gdg, registry);
            let gate = RecoveryGate::new(gdg.num_blocks());
            (gate, map)
        }
    };
    gate.set_total_batches(0);
    let admission = GatedAdmission::new(Arc::clone(&gate), map);

    let shared = Arc::new(Shared {
        state: Mutex::new(StateInner {
            state: StandbyState::Applying,
            error: None,
        }),
        cv: Condvar::new(),
        promote: AtomicBool::new(false),
        bootstrap_pending: AtomicBool::new(true),
        resync_pending: AtomicBool::new(false),
        rebootstraps: ObsCounter::new(),
        received_log_bytes: ObsCounter::new(),
        txns: ObsCounter::new(),
        commands: ObsCounter::new(),
        writes: ObsCounter::new(),
        max_ts: AtomicU64::new(0),
        pepoch: AtomicU64::new(0),
        after_ts: AtomicU64::new(0),
        ckpt_tuples: AtomicU64::new(0),
        batch_bytes: Mutex::new(BTreeMap::new()),
    });
    // Bind this standby's counters into the global registry: rebinding on
    // a later standby replaces the handles, so a snapshot always reflects
    // the latest session.
    {
        let r = pacman_obs::registry();
        r.bind_counter("standby.rebootstraps", &shared.rebootstraps);
        r.bind_counter("standby.received_log_bytes", &shared.received_log_bytes);
        r.bind_counter("standby.txns", &shared.txns);
        r.bind_counter("standby.commands", &shared.commands);
        r.bind_counter("standby.writes", &shared.writes);
    }
    metrics.register_into(pacman_obs::registry());

    // Apply engine.
    let mut apply_joins = Vec::new();
    let mut shard_state = None;
    let feed = match config.scheme {
        RecoveryScheme::LlrP => {
            let shards = session_shards.take().expect("LlrP built its shard map");
            let state = Arc::new(ShardApply {
                lanes: crate::recovery::shard_apply::lanes(shards.total()),
                loaded: AtomicU64::new(0),
                done: AtomicBool::new(false),
                err: Mutex::new(None),
            });
            for worker in 0..threads {
                let state = Arc::clone(&state);
                let db = Arc::clone(&db);
                let gate = Arc::clone(&gate);
                let metrics = Arc::clone(&metrics);
                apply_joins.push(
                    std::thread::Builder::new()
                        .name(format!("standby-shard-{worker}"))
                        .spawn(move || shard_worker(&state, &db, &gate, &metrics, worker))
                        .map_err(|e| Error::Unknown(format!("spawn standby worker: {e}")))?,
                );
            }
            shard_state = Some(Arc::clone(&state));
            Feed::Shards { state, map: shards }
        }
        scheme => {
            let mode = match scheme {
                RecoveryScheme::ClrP { mode } | RecoveryScheme::AlrP { mode } => mode,
                _ => ReplayMode::PureStatic, // Clr: serial per-block apply
            };
            let (tx, srx) = crossbeam::channel::unbounded::<ExecutionSchedule>();
            let db2 = Arc::clone(&db);
            let gdg2 = Arc::clone(&gdg);
            let gate2 = Arc::clone(&gate);
            let metrics2 = Arc::clone(&metrics);
            let shared2 = Arc::clone(&shared);
            let estimate = vec![1; gdg.num_blocks()];
            let threads = if matches!(scheme, RecoveryScheme::Clr) {
                1
            } else {
                threads
            };
            apply_joins.push(
                std::thread::Builder::new()
                    .name("standby-replay".into())
                    .spawn(move || {
                        if let Err(e) = run_replay_gated(
                            &db2,
                            &gdg2,
                            mode,
                            threads,
                            &estimate,
                            &metrics2,
                            srx,
                            Some(Arc::clone(&gate2)),
                        ) {
                            shared2.fail(&gate2, e);
                        }
                    })
                    .map_err(|e| Error::Unknown(format!("spawn standby replay: {e}")))?,
            );
            Feed::Sched {
                tx,
                gdg: Arc::clone(&gdg),
                registry: registry.clone(),
            }
        }
    };

    // Receiver: decode frames, persist them into the standby's own
    // directory, and feed seal-delimited batches to the apply engine.
    let recv_join = {
        let db = Arc::clone(&db);
        let gate = Arc::clone(&gate);
        let shared = Arc::clone(&shared);
        let storage = storage.clone();
        let metrics = Arc::clone(&metrics);
        let threads_for_bootstrap = threads;
        std::thread::Builder::new()
            .name("standby-recv".into())
            .spawn(move || {
                let mut rs = ReceiverState {
                    db,
                    storage,
                    gate: Arc::clone(&gate),
                    shared: Arc::clone(&shared),
                    metrics,
                    feed,
                    pending: Vec::new(),
                    pending_bytes: 0,
                    seq: 0,
                    threads: threads_for_bootstrap,
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rs.run(rx)))
                    .unwrap_or_else(|_| Err(Error::Unknown("standby receiver panicked".into())));
                match result {
                    Ok(()) => {}
                    Err(e) => shared.fail(&gate, e),
                }
                // Promote (or failure) ends the feeders either way so the
                // apply threads can drain out.
                rs.close_feed();
            })
            .map_err(|e| Error::Unknown(format!("spawn standby receiver: {e}")))?
    };

    let gate_probe = register_gate_probe(&gate);
    Ok(Standby {
        db,
        storage,
        registry: registry.clone(),
        gate,
        admission,
        shared,
        metrics,
        recv_join: Some(recv_join),
        apply_joins,
        shard_state,
        gate_probe,
    })
}

struct ReceiverState {
    db: Arc<Database>,
    storage: StorageSet,
    gate: Arc<RecoveryGate>,
    shared: Arc<Shared>,
    metrics: Arc<RecoveryMetrics>,
    feed: Feed,
    pending: Vec<TxnLogRecord>,
    pending_bytes: u64,
    seq: u64,
    threads: usize,
}

impl ReceiverState {
    fn run(&mut self, rx: crossbeam::channel::Receiver<Vec<u8>>) -> Result<()> {
        let mut disconnected = false;
        loop {
            if self.shared.promote.load(Ordering::Acquire) {
                // Drain the shipped tail already on the link, then flush
                // any sealed-but-unfed records as a final batch.
                while let Ok(bytes) = rx.try_recv() {
                    self.handle(&bytes)?;
                }
                if self.shared.resync_pending.load(Ordering::Acquire) {
                    // Reset received but the re-bootstrap base image never
                    // arrived: the primary reclaimed history this standby
                    // is missing, so its state cannot be completed.
                    return Err(Error::Unknown(
                        "standby reset without a re-bootstrap chain; promote is unsafe".into(),
                    ));
                }
                self.flush_pending()?;
                return Ok(());
            }
            if disconnected {
                // Keep folding apply progress while holding for a promote
                // decision — batches fed before the link died are still
                // being applied behind the gate.
                self.observe_applied();
                std::thread::sleep(Duration::from_micros(500));
                continue;
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(bytes) => self.handle(&bytes)?,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => self.observe_applied(),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    // Link severed (primary gone): hold state and wait for
                    // a promote decision.
                    disconnected = true;
                }
            }
        }
    }

    /// Fold newly-applied batches into the metrics counters (the applied
    /// side of the shipped/applied byte accounting).
    fn observe_applied(&self) {
        let applied = self.gate.min_watermark().min(self.seq);
        let mut bb = self.shared.batch_bytes.lock();
        let done: Vec<u64> = bb.range(..=applied).map(|(s, _)| *s).collect();
        for s in done {
            let (bytes, max_epoch) = bb.remove(&s).unwrap_or((0, 0));
            self.metrics.count_applied_batch(bytes);
            // Span attribution: the batch's newest epoch is now queryable on
            // the standby (standby.apply_lag's right edge).
            pacman_obs::spans().record(max_epoch, pacman_obs::Stage::Applied);
        }
    }

    /// Block until the apply engines have fully applied every batch fed
    /// so far (all partition watermarks at `seq`). Used on a Reset,
    /// before the resync: replacing shard state while command
    /// re-execution is still in flight would let it read half-replaced
    /// rows.
    fn quiesce_applies(&self) -> Result<()> {
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.gate.min_watermark() < self.seq {
            if let Feed::Shards { state, .. } = &self.feed {
                if let Some(e) = state.err.lock().clone() {
                    return Err(e);
                }
            }
            if self.shared.state.lock().state == StandbyState::Failed {
                return Err(Error::Unknown("standby failed before resync".into()));
            }
            if Instant::now() >= deadline {
                return Err(Error::Unknown(
                    "standby apply engines never quiesced for resync".into(),
                ));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.observe_applied();
        Ok(())
    }

    fn handle(&mut self, bytes: &[u8]) -> Result<()> {
        let frame = ShipFrame::decode(&mut Cursor::new(bytes))?;
        match frame {
            ShipFrame::Hello { .. } => {
                // Wire version was validated by the decoder; the layout
                // fields are informational (file names arrive explicit).
            }
            ShipFrame::Records {
                file,
                offset,
                bytes,
            } => {
                let logger = file
                    .strip_prefix("log/")
                    .and_then(|s| s.split('/').next())
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| Error::Corrupt(format!("bad shipped log file {file}")))?;
                // Exactly-once against redelivery: the shipper only
                // commits its cursor after a fully-delivered stream, so a
                // severed link can resend a run we already hold. Our own
                // copy's length is the byte position the next new run must
                // start at; an overlap is skipped (its records were
                // already buffered/applied), a gap is corruption.
                let have = self.storage.disk(logger).len(&file).unwrap_or(0) as u64;
                if offset > have {
                    return Err(Error::Corrupt(format!(
                        "ship gap in {file}: run starts at {offset}, have {have}"
                    )));
                }
                let skip = (have - offset) as usize;
                if skip >= bytes.len() {
                    return Ok(()); // pure redelivery, nothing new
                }
                let fresh = &bytes[skip..];
                // Persist first — the standby's directory must always be a
                // valid crash image — then buffer for the next seal.
                self.storage.disk(logger).append(&file, fresh);
                let after_ts = self.shared.after_ts.load(Ordering::Acquire);
                let mut cur = Cursor::new(fresh);
                while !cur.is_empty() {
                    let rec = TxnLogRecord::decode(&mut cur)?;
                    if rec.ts > after_ts {
                        self.pending.push(rec);
                    }
                }
                self.pending_bytes += fresh.len() as u64;
                self.shared.received_log_bytes.add(fresh.len() as u64);
            }
            ShipFrame::Blob { name, disk, bytes } => {
                if !name.starts_with("ckpt/") {
                    return Err(Error::Corrupt(format!("unexpected shipped blob {name}")));
                }
                // Manifests resolve parts by device index: honor the
                // shipped placement (wrapping onto fewer devices is fine —
                // recovery's reads wrap identically).
                self.storage.disk(disk as usize).write_file(&name, &bytes);
            }
            ShipFrame::ChainTip { bytes } => {
                self.storage.disk(0).write_file(MANIFEST_FILE, &bytes);
                self.storage.disk(0).fsync();
                if self.shared.resync_pending.load(Ordering::Acquire) {
                    // Re-bootstrap: the primary reclaimed log this standby
                    // never received, and this tip covers the gap. Replace
                    // every shard with the chain's state (updates install
                    // LWW, vanished keys tombstone) and drop buffered
                    // records the new base already covers.
                    let chain = read_chain(&self.storage)?
                        .ok_or_else(|| Error::Corrupt("reset chain tip unreadable".into()))?;
                    if chain.ts() > self.shared.after_ts.load(Ordering::Acquire) {
                        let ckpt =
                            resync_checkpoint_chain(&self.storage, &chain, &self.db, self.threads)?;
                        self.shared
                            .ckpt_tuples
                            .fetch_add(ckpt.tuples, Ordering::Release);
                        self.shared.after_ts.store(chain.ts(), Ordering::Release);
                        self.db.clock().advance_to(chain.ts() + 1);
                        let after = chain.ts();
                        self.pending.retain(|r| r.ts > after);
                    }
                    self.shared.resync_pending.store(false, Ordering::Release);
                    self.shared.rebootstraps.inc();
                    pacman_obs::tracer().emit(TraceEvent::StandbyRebootstrap {
                        chain_ts: self.shared.after_ts.load(Ordering::Acquire),
                    });
                } else if self.shared.after_ts.load(Ordering::Acquire) == 0 && self.seq == 0 {
                    // The first tip is the bootstrap base image: load it
                    // eagerly before anything is applied. Later tips (the
                    // primary checkpointed mid-stream) are bookkeeping
                    // only — the standby's state is already newer than
                    // the snapshot.
                    let chain = read_chain(&self.storage)?
                        .ok_or_else(|| Error::Corrupt("shipped chain tip unreadable".into()))?;
                    let ckpt = recover_checkpoint_chain(
                        &self.storage,
                        &chain,
                        self.threads,
                        CheckpointTarget::Tables(&self.db),
                    )?;
                    self.shared
                        .ckpt_tuples
                        .store(ckpt.tuples, Ordering::Release);
                    self.shared.after_ts.store(chain.ts(), Ordering::Release);
                    self.db.clock().advance_to(chain.ts() + 1);
                }
                // Base image resident (or already newer): reads may pass.
                self.shared
                    .bootstrap_pending
                    .store(false, Ordering::Release);
            }
            ShipFrame::Reset => {
                // The primary broke this subscriber's cursor (bounded-lag
                // retention) and a fresh bootstrap stream follows. Drain
                // the apply engines first: command re-execution racing the
                // coming resync would read half-replaced state. Buffered
                // (sealed-but-unfed) records are kept — the fresh cursor
                // skips what we already hold, so nothing redelivers them —
                // and the resync purges those its new base covers.
                self.quiesce_applies()?;
                self.shared.resync_pending.store(true, Ordering::Release);
                // Reads hold off until the resync lands.
                self.shared.bootstrap_pending.store(true, Ordering::Release);
            }
            ShipFrame::Seal { pepoch } => {
                // The shipped prefix is complete up to `pepoch`: persist
                // the frontier (the standby's own pepoch) and feed the
                // delimited batch. The in-memory frontier publishes only
                // after the batch is fed, so an observer seeing
                // `pepoch >= p` knows every seal at or below `p` has
                // already moved the gate's total.
                self.storage
                    .disk(0)
                    .write_file(PEPOCH_FILE, &pepoch.to_le_bytes());
                self.storage.disk(0).fsync();
                self.flush_pending()?;
                self.shared.pepoch.fetch_max(pepoch, Ordering::AcqRel);
                // A seal implies the stream head (incl. any bootstrap
                // chain, which ships ahead of records) was processed —
                // unless a resync is still owed its chain tip, in which
                // case reads keep holding off.
                if !self.shared.resync_pending.load(Ordering::Acquire) {
                    self.shared
                        .bootstrap_pending
                        .store(false, Ordering::Release);
                }
            }
        }
        Ok(())
    }

    /// Feed buffered records as one apply batch (no-op when empty).
    fn flush_pending(&mut self) -> Result<()> {
        if self.shared.resync_pending.load(Ordering::Acquire) {
            // A Reset arrived but its chain tip hasn't: the buffer may
            // hold records the coming base image covers (a racing
            // reclaim made the shipper retry the chain). Keep buffering —
            // the resync purges what its tip covers and the next seal
            // feeds the remainder.
            return Ok(());
        }
        if self.pending.is_empty() {
            self.pending_bytes = 0;
            return Ok(());
        }
        let mut records = std::mem::take(&mut self.pending);
        records.sort_by_key(|r| r.ts);
        self.seq += 1;
        let batch_bytes = self.pending_bytes;
        self.pending_bytes = 0;
        if let Some(last) = records.last() {
            self.shared.max_ts.fetch_max(last.ts, Ordering::AcqRel);
        }
        self.shared.txns.add(records.len() as u64);
        for r in &records {
            match &r.payload {
                LogPayload::Command { .. } => {
                    self.shared.commands.inc();
                }
                LogPayload::Writes { .. } | LogPayload::TaggedWrites { .. } => {
                    self.shared.writes.inc();
                }
            }
        }
        pacman_obs::tracer().emit(TraceEvent::StandbyApply {
            batch: self.seq,
            bytes: batch_bytes,
        });
        // Records are ts-sorted: the batch's newest epoch is the last one's.
        let max_epoch = records
            .last()
            .map(|r| pacman_common::clock::epoch_of(r.ts))
            .unwrap_or(0);
        self.shared
            .batch_bytes
            .lock()
            .insert(self.seq, (batch_bytes, max_epoch));
        // Move the frontier *before* feeding: a read admitted after this
        // point waits for the new batch; one admitted just before reads
        // the previous consistent prefix.
        self.gate.set_total_batches(self.seq);
        match &mut self.feed {
            Feed::Sched { tx, gdg, registry } => {
                let batch = LogBatch {
                    index: self.seq,
                    records,
                };
                let schedule = ExecutionSchedule::build(gdg, registry, &batch)?;
                tx.send(schedule)
                    .map_err(|_| Error::Unknown("standby replay runtime exited".into()))?;
            }
            Feed::Shards { state, map } => {
                if state.err.lock().is_some() {
                    return Err(state
                        .err
                        .lock()
                        .clone()
                        .unwrap_or_else(|| Error::Unknown("standby shard apply failed".into())));
                }
                let mut groups: Vec<Vec<(Timestamp, WriteRecord)>> =
                    (0..map.total()).map(|_| Vec::new()).collect();
                for rec in &records {
                    let writes = match &rec.payload {
                        LogPayload::Writes { writes, .. }
                        | LogPayload::TaggedWrites { writes, .. } => writes,
                        LogPayload::Command { .. } => {
                            return Err(Error::Corrupt(
                                "LLR-P standby requires tuple-level log records".into(),
                            ));
                        }
                    };
                    for w in writes {
                        let p = map.partition(&self.db, w.table, w.key)?;
                        groups[p].push((rec.ts, w.clone()));
                    }
                }
                for (p, g) in groups.iter_mut().enumerate() {
                    if !g.is_empty() {
                        state.lanes[p].queue.lock().append(g);
                    }
                }
                state.loaded.store(self.seq, Ordering::Release);
            }
        }
        self.observe_applied();
        Ok(())
    }

    /// Stop the apply engine's intake (promote drain or failure exit).
    fn close_feed(&mut self) {
        match &mut self.feed {
            Feed::Sched { tx, .. } => {
                // Replace the sender so the channel disconnects.
                let (dead, _) = crossbeam::channel::unbounded();
                *tx = dead;
            }
            Feed::Shards { state, .. } => {
                state.done.store(true, Ordering::Release);
            }
        }
    }
}

/// The tuple-scheme apply worker: the shared LLR-P shard-queue loop
/// (`crate::recovery::shard_apply`), fed by shipped seals instead of a
/// device scan — `loaded` is the highest seal fully enqueued and `done`
/// flips at promote.
fn shard_worker(
    state: &ShardApply,
    db: &Database,
    gate: &RecoveryGate,
    metrics: &RecoveryMetrics,
    worker: usize,
) {
    crate::recovery::shard_apply::run_shard_worker(
        &state.lanes,
        db,
        gate,
        metrics,
        &state.err,
        || state.loaded.load(Ordering::Acquire),
        || state.done.load(Ordering::Acquire),
        worker,
    );
}

impl Standby {
    /// The live (read-only) database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The lag gate (partition-level introspection).
    pub fn gate(&self) -> &Arc<RecoveryGate> {
        &self.gate
    }

    /// Admission control for standby reads: a transaction passes once its
    /// static footprint is caught up with everything shipped.
    pub fn admission(&self) -> Arc<dyn AdmissionControl> {
        Arc::clone(&self.admission) as Arc<dyn AdmissionControl>
    }

    /// Current lifecycle state.
    pub fn state(&self) -> StandbyState {
        self.shared.state.lock().state
    }

    /// The session error, if the standby failed.
    pub fn error(&self) -> Option<String> {
        self.shared
            .state
            .lock()
            .error
            .as_ref()
            .map(|e| e.to_string())
    }

    /// Live replication counters.
    pub fn stats(&self) -> ReplicationStats {
        // Read the frontier *before* the gate totals: the receiver
        // publishes `pepoch` only after bumping the total for its seal,
        // so a snapshot whose pepoch covers seal P is guaranteed to see
        // P's total too — otherwise a waiter could observe the new
        // frontier with a stale total and report lag 0 while the final
        // batch is still applying.
        let pepoch = self.shared.pepoch.load(Ordering::Acquire);
        let shipped = self.gate.total_batches();
        let applied = self.gate.min_watermark().min(shipped);
        // The receiver folds applied batches into the metrics counter on
        // its 1 ms cadence; add what it hasn't observed yet. Both sources
        // are read under the batch_bytes lock — the receiver moves a
        // batch between them while holding it, so the sum never dips.
        // One locked snapshot for the byte counters: the receiver bumps
        // `received_log_bytes` and moves a batch between `batch_bytes` and
        // the metrics' applied counter while holding this lock, so reading
        // both sides under it keeps `received >= applied` and neither sum
        // ever dips.
        let (received_log_bytes, applied_log_bytes) = {
            let bb = self.shared.batch_bytes.lock();
            (
                self.shared.received_log_bytes.get(),
                self.metrics.applied_log_bytes()
                    + bb.range(..=applied).map(|(_, &(b, _))| b).sum::<u64>(),
            )
        };
        ReplicationStats {
            shipped_batches: shipped,
            applied_batches: applied,
            lag_batches: shipped.saturating_sub(applied),
            received_log_bytes,
            applied_log_bytes,
            txns: self.shared.txns.get(),
            pepoch,
            rebootstraps: self.shared.rebootstraps.get(),
        }
    }

    /// Block until the standby has received seals through `min_pepoch`
    /// *and* applied everything shipped (lag 0). Returns `false` if the
    /// standby failed or `timeout` elapsed first. Pass the primary's
    /// (persisted) pepoch to wait for a full catch-up.
    pub fn wait_caught_up(&self, min_pepoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.state() == StandbyState::Failed {
                return false;
            }
            let s = self.stats();
            if s.pepoch >= min_pepoch
                && s.lag_batches == 0
                && !self.shared.resync_pending.load(Ordering::Acquire)
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Execute a read-only procedure against the standby, gated on its
    /// footprint being caught up. Returns `Ok(None)` when the footprint is
    /// still behind (the caller may retry — the request was flagged, so
    /// the apply workers prioritize it). Procedures with write ops are
    /// rejected: a standby must not mutate replicated state.
    pub fn execute_read_only(
        &self,
        proc: ProcId,
        params: &Params,
    ) -> Result<Option<pacman_engine::CommitInfo>> {
        let def = self.registry.get(proc)?;
        if def.ops.iter().any(|op| op.is_write()) {
            return Err(Error::InvalidConfig(format!(
                "procedure {} writes; a standby serves read-only transactions",
                def.name
            )));
        }
        if self.state() == StandbyState::Failed {
            return Err(Error::Unknown("standby failed".into()));
        }
        // Before the stream head lands (bootstrap base image / first
        // seal) the gate's total is still 0 and would admit everything
        // against an empty or half-loaded database — refuse instead.
        if self.shared.bootstrap_pending.load(Ordering::Acquire) {
            return Ok(None);
        }
        if !self.admission.try_admit(proc, params) {
            self.admission.request(proc, params);
            return Ok(None);
        }
        // OCC validation protects the read from racing installs: on
        // conflict, retry — the apply frontier only moves forward.
        let mut tries = 0;
        loop {
            match run_procedure(&self.db, def, params) {
                Ok(info) => return Ok(Some(info)),
                Err(Error::TxnAborted(_)) if tries < 100 => tries += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Promote to a full primary: drain the shipped tail already on the
    /// link, finish applying every batch, open the gate for good, and
    /// reopen the standby's own (shipped) log directory for resumed
    /// logging. `config` must mirror the primary's durability layout
    /// (`num_loggers`, `batch_epochs`) — batch naming derives from both.
    pub fn promote(mut self, config: DurabilityConfig) -> Result<PromotedPrimary> {
        let t0 = Instant::now();
        self.shared.promote.store(true, Ordering::Release);
        if let Some(j) = self.recv_join.take() {
            let _ = j.join();
        }
        // Shard apply: `done` was set by the receiver's close_feed; the
        // command runtime's channel was disconnected the same way. Wait
        // for the apply side to drain out.
        for j in self.apply_joins.drain(..) {
            let _ = j.join();
        }
        if let Some(state) = &self.shard_state {
            if let Some(e) = state.err.lock().take() {
                self.shared.fail(&self.gate, e);
            }
        }
        {
            let st = self.shared.state.lock();
            if st.state == StandbyState::Failed {
                return Err(st
                    .error
                    .clone()
                    .unwrap_or_else(|| Error::Unknown("standby failed".into())));
            }
        }
        self.gate.finish();

        // Resume the clock past everything applied, then reopen the
        // shipped log for writing: epoch numbering continues strictly
        // past max(pepoch, chain tip, clock) — the PR 2 lifecycle.
        let max_ts = self.shared.max_ts.load(Ordering::Acquire);
        let after_ts = self.shared.after_ts.load(Ordering::Acquire);
        let pepoch = self.shared.pepoch.load(Ordering::Acquire);
        let floor = max_ts.max(after_ts).max(if pepoch > 0 {
            epoch_floor(pepoch + 1)
        } else {
            0
        });
        self.db.clock().advance_to(floor.saturating_add(1));

        let report = StandbyReport {
            batches: self.gate.total_batches(),
            txns: self.shared.txns.get(),
            replayed_commands: self.shared.commands.get(),
            applied_writes: self.shared.writes.get(),
            received_log_bytes: self.shared.received_log_bytes.get(),
            checkpoint_tuples: self.shared.ckpt_tuples.load(Ordering::Relaxed),
            promote_secs: t0.elapsed().as_secs_f64(),
        };
        let (durability, resume) =
            Durability::reopen(Arc::clone(&self.db), self.storage.clone(), config);
        Ok(PromotedPrimary {
            db: Arc::clone(&self.db), // `self` drops below; its joins are spent
            durability,
            resume,
            report,
        })
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        pacman_obs::watchdog().remove(self.gate_probe);
        // An un-promoted standby being discarded: unblock every thread.
        self.shared.promote.store(true, Ordering::Release);
        if let Some(j) = self.recv_join.take() {
            let _ = j.join();
        }
        if let Some(state) = &self.shard_state {
            state.done.store(true, Ordering::Release);
        }
        for j in self.apply_joins.drain(..) {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::{pump, wire};
    use pacman_common::clock::epoch_of;
    use pacman_common::{Row, TableId, Value};
    use pacman_engine::run_procedure_with_epoch;
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_storage::{DiskConfig, StorageSet};
    use pacman_wal::{LogScheme, LogShipper};

    const T: TableId = TableId::new(0);
    const ADD: ProcId = ProcId::new(0);
    const GET: ProcId = ProcId::new(1);

    fn setup() -> (Catalog, ProcRegistry) {
        let mut c = Catalog::new();
        c.add_table_sharded("t", 1, 2);
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ADD, "Add", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();
        let mut b = ProcBuilder::new(GET, "Get", 1);
        let _ = b.read(T, Expr::param(0), 0);
        reg.register(b.build().unwrap()).unwrap();
        (c, reg)
    }

    fn durability_config(scheme: LogScheme) -> DurabilityConfig {
        DurabilityConfig {
            scheme,
            num_loggers: 1,
            epoch_interval: Duration::from_millis(2),
            batch_epochs: 4,
            checkpoint_interval: None,
            checkpoint_threads: 1,
            fsync: true,
            ..Default::default()
        }
    }

    /// Build a primary image: seeded + checkpointed base, then `n`
    /// committed transactions logged in `scheme` format. Returns the
    /// primary storage, the reference database and the persisted pepoch.
    fn primary_image(
        catalog: &Catalog,
        registry: &ProcRegistry,
        scheme: LogScheme,
        n: u64,
    ) -> (StorageSet, Arc<Database>, u64) {
        use pacman_common::Encoder;
        let storage = StorageSet::identical(1, DiskConfig::unthrottled("prim"));
        let db = Arc::new(Database::new(catalog.clone()));
        for k in 0..8u64 {
            db.seed_row(T, k, Row::from([Value::Int(100)])).unwrap();
        }
        pacman_wal::run_checkpoint(&db, &storage, 1).unwrap();
        let mut buf = Vec::new();
        let mut batch = 0u64;
        let mut max_epoch = 0;
        for i in 0..n {
            let params: Params = vec![Value::Int((i % 8) as i64), Value::Int(1)].into();
            let proc = registry.get(ADD).unwrap();
            let epoch = 1 + i / 5;
            let info = run_procedure_with_epoch(&db, proc, &params, || epoch).unwrap();
            max_epoch = max_epoch.max(epoch_of(info.ts));
            let payload = match scheme {
                LogScheme::Logical => LogPayload::Writes {
                    writes: info.writes.clone(),
                    physical: false,
                    adhoc: false,
                },
                LogScheme::Adaptive if i % 2 == 0 => LogPayload::TaggedWrites {
                    proc: ADD,
                    writes: info.writes.clone(),
                },
                _ => LogPayload::Command { proc: ADD, params },
            };
            TxnLogRecord {
                ts: info.ts,
                payload,
            }
            .encode(&mut buf);
            // batch_epochs = 4: split files at epoch-derived batch bounds.
            if (i + 1) % 20 == 0 {
                storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
                buf.clear();
                batch += 1;
            }
        }
        if !buf.is_empty() {
            storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
        }
        storage
            .disk(0)
            .write_file(PEPOCH_FILE, &max_epoch.to_le_bytes());
        (storage, db, max_epoch)
    }

    fn standby_config(scheme: RecoveryScheme) -> StandbyConfig {
        StandbyConfig { scheme, threads: 2 }
    }

    #[test]
    fn command_standby_applies_and_promotes() {
        let (catalog, reg) = setup();
        let (primary, reference, pepoch) = primary_image(&catalog, &reg, LogScheme::Command, 40);
        let shipper = LogShipper::new(primary.clone(), 1, 4);
        let (tx, rx) = wire();
        let standby_storage = StorageSet::identical(1, DiskConfig::unthrottled("stb"));
        let standby = start_standby(
            standby_storage.clone(),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            }),
            rx,
        )
        .unwrap();
        pump(&shipper, pepoch, &tx).unwrap();
        assert!(standby.wait_caught_up(pepoch, Duration::from_secs(5)));
        let s = standby.stats();
        assert_eq!(s.lag_batches, 0);
        assert_eq!(s.txns, 40);
        assert!(s.received_log_bytes > 0);
        assert_eq!(s.pepoch, pepoch);

        let promoted = standby
            .promote(durability_config(LogScheme::Command))
            .unwrap();
        assert_eq!(promoted.db.fingerprint(), reference.fingerprint());
        assert_eq!(promoted.report.txns, 40);
        assert_eq!(promoted.report.replayed_commands, 40);
        assert_eq!(promoted.report.checkpoint_tuples, 8);
        assert!(promoted.resume.base_epoch >= pepoch);

        // The promoted primary serves writes with strictly newer epochs.
        let worker = promoted.durability.register_worker();
        let em = Arc::clone(promoted.durability.epoch_manager());
        worker.enter();
        let proc = reg.get(ADD).unwrap();
        let params: Params = vec![Value::Int(0), Value::Int(1)].into();
        let info = run_procedure_with_epoch(&promoted.db, proc, &params, || em.current()).unwrap();
        assert!(epoch_of(info.ts) > promoted.resume.base_epoch);
        promoted
            .durability
            .log_commit(0, &info, ADD, &params, false);
        worker.retire();
        promoted.durability.wait_durable(epoch_of(info.ts));
        promoted.durability.shutdown();
    }

    #[test]
    fn llr_p_standby_applies_logical_stream() {
        let (catalog, reg) = setup();
        let (primary, reference, pepoch) = primary_image(&catalog, &reg, LogScheme::Logical, 30);
        let shipper = LogShipper::new(primary.clone(), 1, 4);
        let (tx, rx) = wire();
        let standby = start_standby(
            StorageSet::identical(1, DiskConfig::unthrottled("stb")),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::LlrP),
            rx,
        )
        .unwrap();
        // Ship in two pumps to exercise incremental seals.
        pump(&shipper, pepoch / 2, &tx).unwrap();
        pump(&shipper, pepoch, &tx).unwrap();
        assert!(standby.wait_caught_up(pepoch, Duration::from_secs(5)));

        // A caught-up read admits immediately and sees replicated state.
        let params: Params = vec![Value::Int(3)].into();
        let info = standby
            .execute_read_only(GET, &params)
            .unwrap()
            .expect("caught-up footprint admits");
        assert!(info.writes.is_empty());

        // Write procedures are rejected outright.
        assert!(standby
            .execute_read_only(ADD, &vec![Value::Int(0), Value::Int(1)].into())
            .is_err());

        let promoted = standby
            .promote(durability_config(LogScheme::Logical))
            .unwrap();
        assert_eq!(promoted.db.fingerprint(), reference.fingerprint());
        assert_eq!(promoted.report.applied_writes, 30);
        promoted.durability.shutdown();
    }

    #[test]
    fn adaptive_standby_applies_mixed_stream() {
        let (catalog, reg) = setup();
        let (primary, reference, pepoch) = primary_image(&catalog, &reg, LogScheme::Adaptive, 30);
        let shipper = LogShipper::new(primary.clone(), 1, 4);
        let (tx, rx) = wire();
        let standby = start_standby(
            StorageSet::identical(1, DiskConfig::unthrottled("stb")),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            }),
            rx,
        )
        .unwrap();
        pump(&shipper, pepoch, &tx).unwrap();
        assert!(standby.wait_caught_up(pepoch, Duration::from_secs(5)));
        let promoted = standby
            .promote(durability_config(LogScheme::Adaptive))
            .unwrap();
        assert_eq!(promoted.db.fingerprint(), reference.fingerprint());
        assert_eq!(
            promoted.report.replayed_commands + promoted.report.applied_writes,
            30
        );
        assert!(promoted.report.replayed_commands > 0);
        assert!(promoted.report.applied_writes > 0);
        promoted.durability.shutdown();
    }

    #[test]
    fn corrupt_frame_fails_the_standby_and_poisons_the_gate() {
        let (catalog, reg) = setup();
        // Raw wire: deliver undecodable bytes straight to the receiver.
        let (gtx, grx) = crossbeam::channel::unbounded::<Vec<u8>>();
        let bad = start_standby(
            StorageSet::identical(1, DiskConfig::unthrottled("stb2")),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            }),
            grx,
        )
        .unwrap();
        gtx.send(vec![99u8, 0, 0]).unwrap();
        let t0 = Instant::now();
        while bad.state() != StandbyState::Failed {
            assert!(t0.elapsed() < Duration::from_secs(2), "never failed");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(bad.gate().is_failed());
        assert!(bad.error().is_some());
        assert!(bad.promote(durability_config(LogScheme::Command)).is_err());
    }

    #[test]
    fn reads_gate_on_the_moving_frontier() {
        // Drive the gate by hand to pin the semantics: total moves with
        // each shipped batch, so "admitted" means caught up, not done.
        let (catalog, reg) = setup();
        // Bootstrap only (checkpointed base image, no log): the standby's
        // database holds the seeded rows and no seal has shipped.
        let (primary, _reference, _pepoch) = primary_image(&catalog, &reg, LogScheme::Command, 0);
        let shipper = LogShipper::new(primary, 1, 4);
        let (tx, rx) = wire();
        let standby = start_standby(
            StorageSet::identical(1, DiskConfig::unthrottled("stb")),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            }),
            rx,
        )
        .unwrap();
        pump(&shipper, 0, &tx).unwrap();
        let t0 = Instant::now();
        while standby.db().total_tuples() < 8 {
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "bootstrap never landed"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let gate = Arc::clone(standby.gate());
        // Nothing shipped: everything is "caught up".
        assert!(standby
            .execute_read_only(GET, &vec![Value::Int(1)].into())
            .unwrap()
            .is_some());
        // A shipped-but-unapplied batch closes the gate...
        gate.set_total_batches(1);
        assert!(standby
            .execute_read_only(GET, &vec![Value::Int(1)].into())
            .unwrap()
            .is_none());
        assert_eq!(standby.stats().lag_batches, 1);
        // ...and applying it reopens admission at the new frontier.
        for p in 0..gate.num_partitions() {
            gate.publish(p, 1);
        }
        assert!(standby
            .execute_read_only(GET, &vec![Value::Int(1)].into())
            .unwrap()
            .is_some());
        assert_eq!(standby.stats().lag_batches, 0);
    }

    /// The full bounded-lag lifecycle at unit scale: a standby ships a
    /// prefix, lags through a checkpoint+reclaim that breaks its cursor,
    /// and the next pump re-bootstraps it (Reset → resync onto the new
    /// chain tip → tail apply) to the exact primary state.
    #[test]
    fn broken_cursor_rebootstraps_the_standby() {
        use pacman_common::Encoder;
        use pacman_wal::batch_index_of_epoch;
        use pacman_wal::{RetentionManager, RetentionPolicy};
        let (catalog, reg) = setup();
        let storage = StorageSet::identical(1, DiskConfig::unthrottled("prim"));
        let db = Arc::new(Database::new(catalog.clone()));
        for k in 0..8u64 {
            db.seed_row(T, k, Row::from([Value::Int(100)])).unwrap();
        }
        pacman_wal::run_checkpoint(&db, &storage, 1).unwrap();

        let retention = RetentionManager::new(
            storage.clone(),
            1,
            4,
            RetentionPolicy {
                max_subscriber_lag_bytes: Some(64),
            },
        );
        let shipper = LogShipper::with_retention(
            storage.clone(),
            1,
            4,
            Arc::default(),
            Arc::clone(&retention),
        );
        let (tx, rx) = wire();
        let standby = start_standby(
            StorageSet::identical(1, DiskConfig::unthrottled("stb")),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            }),
            rx,
        )
        .unwrap();

        // Commit `n` transactions at `epoch`, appending to the epoch's
        // batch file exactly as a logger would.
        let commit_at = |epoch: u64, n: u64| {
            let proc = reg.get(ADD).unwrap();
            for i in 0..n {
                let params: Params =
                    vec![Value::Int(((epoch + i) % 8) as i64), Value::Int(1)].into();
                let info = run_procedure_with_epoch(&db, proc, &params, || epoch).unwrap();
                let mut buf = Vec::new();
                TxnLogRecord {
                    ts: info.ts,
                    payload: LogPayload::Command { proc: ADD, params },
                }
                .encode(&mut buf);
                let batch = batch_index_of_epoch(epoch, 4);
                storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
            }
        };

        // Phase 1: a healthy prefix ships (epochs 1..=4).
        for e in 1..=4u64 {
            commit_at(e, 2);
        }
        pump(&shipper, 4, &tx).unwrap();
        assert!(standby.wait_caught_up(4, Duration::from_secs(5)));

        // Phase 2 (the gap): the subscriber stops pumping while the
        // primary churns on and checkpoints — coverage passes the cursor,
        // the reclaim round breaks its hold and frees the log.
        for e in 5..=12u64 {
            commit_at(e, 2);
        }
        pacman_wal::run_checkpoint(&db, &storage, 1).unwrap();
        let chain = pacman_wal::read_chain(&storage).unwrap().unwrap();
        let st = retention.reclaim(&chain);
        assert_eq!(st.holds_broken, 1, "lagging cursor must break");
        assert!(
            storage.disk(0).read("log/00/0000000001").is_err(),
            "gap batches reclaimed"
        );

        // Phase 3: the tail continues past coverage; the next pump
        // self-heals — Reset, fresh chain tip, surviving records.
        for e in 13..=16u64 {
            commit_at(e, 2);
        }
        pump(&shipper, 16, &tx).unwrap();
        assert!(
            standby.wait_caught_up(16, Duration::from_secs(5)),
            "rebootstrapped standby never caught up: {:?} / {:?}",
            standby.stats(),
            standby.error()
        );
        assert_eq!(standby.stats().rebootstraps, 1);
        assert_eq!(shipper.rebootstraps(), 1);

        let promoted = standby
            .promote(DurabilityConfig {
                scheme: LogScheme::Command,
                num_loggers: 1,
                epoch_interval: Duration::from_millis(2),
                batch_epochs: 4,
                checkpoint_interval: None,
                checkpoint_threads: 1,
                fsync: true,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(
            promoted.db.fingerprint(),
            db.fingerprint(),
            "re-bootstrapped standby must equal the never-lagged primary"
        );
        promoted.durability.shutdown();
    }

    #[test]
    fn redelivered_record_runs_are_applied_exactly_once() {
        let (catalog, reg) = setup();
        let (primary, reference, pepoch) = primary_image(&catalog, &reg, LogScheme::Command, 20);
        let (tx, rx) = wire();
        let standby_storage = StorageSet::identical(1, DiskConfig::unthrottled("stb"));
        let standby = start_standby(
            standby_storage.clone(),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            }),
            rx,
        )
        .unwrap();
        // Deliver the stream, then (a severed-link retry) deliver the
        // *same* record runs and seal again: the standby must dedup by
        // offset — commands re-executed twice would double-apply.
        let shipper = LogShipper::new(primary.clone(), 1, 4);
        let frames = shipper.poll(pepoch).unwrap();
        for f in &frames {
            tx.send(f).unwrap();
        }
        for f in &frames {
            if matches!(f, ShipFrame::Records { .. } | ShipFrame::Seal { .. }) {
                tx.send(f).unwrap();
            }
        }
        assert!(standby.wait_caught_up(pepoch, Duration::from_secs(5)));
        let promoted = standby
            .promote(durability_config(LogScheme::Command))
            .unwrap();
        assert_eq!(promoted.report.txns, 20, "duplicates must not be fed");
        assert_eq!(promoted.db.fingerprint(), reference.fingerprint());
        // The standby's own log copy holds each shipped byte exactly once.
        for f in &frames {
            if let ShipFrame::Records {
                file,
                offset,
                bytes,
            } = f
            {
                assert_eq!(
                    standby_storage.disk(0).len(file).unwrap(),
                    *offset as usize + bytes.len(),
                    "{file}: duplicate bytes were appended"
                );
            }
        }
        promoted.durability.shutdown();
    }

    #[test]
    fn gapped_record_run_fails_the_standby() {
        let (catalog, reg) = setup();
        let (gtx, grx) = crossbeam::channel::unbounded::<Vec<u8>>();
        let standby = start_standby(
            StorageSet::identical(1, DiskConfig::unthrottled("stb")),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            }),
            grx,
        )
        .unwrap();
        use pacman_common::Encoder;
        // A run claiming to start past what the standby holds = a hole.
        gtx.send(
            ShipFrame::Records {
                file: "log/00/0000000000".into(),
                offset: 999,
                bytes: vec![1, 2, 3].into(),
            }
            .to_bytes(),
        )
        .unwrap();
        let t0 = Instant::now();
        while standby.state() != StandbyState::Failed {
            assert!(t0.elapsed() < Duration::from_secs(2), "gap never detected");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(standby.gate().is_failed());
    }

    #[test]
    fn standby_rejects_latched_schemes() {
        let (catalog, reg) = setup();
        let (_tx, rx) = wire();
        assert!(start_standby(
            StorageSet::for_tests(),
            &catalog,
            &reg,
            &standby_config(RecoveryScheme::Plr { latch: true }),
            rx,
        )
        .is_err());
    }
}
