//! Transaction chopping baseline (Shasha et al., TODS 1995) — the
//! comparison point of Fig. 18.
//!
//! Chopping decomposes transactions so that *any* strict-2PL execution of
//! the pieces remains serializable, which requires the absence of SC-cycles
//! in the chopping graph (cycles mixing sibling edges within a transaction
//! and conflict edges across transactions). That is a strictly stronger
//! requirement than PACMAN's (recovery replays a *known, pre-ordered*
//! schedule), so chopping necessarily produces coarser pieces (§7).
//!
//! We start from the finest per-procedure decomposition (PACMAN's own
//! slices) and repeatedly merge any two pieces of a procedure that both
//! conflict with some (possibly identical) procedure type — the canonical
//! two-transaction SC-cycle `p_i —C— q_k —S…S— q_l —C— p_j —S— p_i`. The
//! fixpoint covers every two-transaction SC-cycle; cycles spanning three or
//! more transactions would only merge further, never split, so the
//! comparison is conservative *in chopping's favour*.

use super::local::LocalGraph;
use super::ops_data_dependent;
use super::union_find::UnionFind;
use pacman_sproc::ProcedureDef;
use std::sync::Arc;

/// The chopping of a set of procedures: per procedure, a list of pieces
/// (op-index sets, program-ordered).
#[derive(Clone, Debug)]
pub struct ChoppingGraph {
    /// `pieces[p]` = the pieces of procedure `p`, each a sorted op list.
    pub pieces: Vec<Vec<Vec<usize>>>,
}

impl ChoppingGraph {
    /// Chop the procedure set.
    pub fn analyze(procs: &[Arc<ProcedureDef>]) -> ChoppingGraph {
        // Start from PACMAN's finest conflict-free decomposition.
        let mut pieces: Vec<Vec<Vec<usize>>> = procs
            .iter()
            .map(|p| {
                LocalGraph::analyze(p)
                    .slices
                    .into_iter()
                    .map(|s| s.ops)
                    .collect()
            })
            .collect();

        let conflict = |pa: &ProcedureDef, a: &[usize], pb: &ProcedureDef, b: &[usize]| {
            a.iter().any(|&oa| {
                b.iter()
                    .any(|&ob| ops_data_dependent(&pa.ops[oa], &pb.ops[ob]))
            })
        };

        // Merge to fixpoint: pieces i<j of procedure P merge when some piece
        // q of any procedure Q conflicts with both (two-txn SC-cycle).
        loop {
            let mut changed = false;
            for pi in 0..procs.len() {
                let list = &pieces[pi];
                if list.len() < 2 {
                    continue;
                }
                let mut uf = UnionFind::new(list.len());
                for i in 0..list.len() {
                    for j in (i + 1)..list.len() {
                        // The cycle partner Q ranges over every procedure
                        // type — including another *instance* of P itself
                        // (workloads run many instances of each type
                        // concurrently). Q's pieces are sibling-connected,
                        // so the SC-cycle
                        //   p_i —C— q_k —S…S— q_l —C— p_j —S— p_i
                        // exists as soon as Q conflicts with p_i through any
                        // piece and with p_j through any (possibly the same)
                        // piece.
                        let cyc = (0..procs.len()).any(|qi| {
                            pieces[qi]
                                .iter()
                                .any(|q| conflict(&procs[pi], &list[i], &procs[qi], q))
                                && pieces[qi]
                                    .iter()
                                    .any(|q| conflict(&procs[pi], &list[j], &procs[qi], q))
                        });
                        if cyc {
                            uf.union(i, j);
                        }
                    }
                }
                let groups = uf.groups();
                if groups.len() != list.len() {
                    changed = true;
                    let merged: Vec<Vec<usize>> = groups
                        .into_iter()
                        .map(|g| {
                            let mut ops: Vec<usize> =
                                g.into_iter().flat_map(|k| list[k].clone()).collect();
                            ops.sort_unstable();
                            ops
                        })
                        .collect();
                    pieces[pi] = merged;
                }
            }
            if !changed {
                break;
            }
        }
        ChoppingGraph { pieces }
    }

    /// Total piece count across procedures (granularity measure).
    pub fn total_pieces(&self) -> usize {
        self.pieces.iter().map(|p| p.len()).sum()
    }

    /// Pieces of one procedure.
    pub fn pieces_of(&self, proc: usize) -> &[Vec<usize>] {
        &self.pieces[proc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{ProcId, TableId};
    use pacman_sproc::{Expr, ProcBuilder};

    const CURRENT: TableId = TableId::new(1);
    const SAVING: TableId = TableId::new(2);

    fn two_table_proc(id: u32, name: &str) -> ProcedureDef {
        let mut b = ProcBuilder::new(ProcId::new(id), name, 2);
        let v = b.read(CURRENT, Expr::param(0), 0);
        b.write(
            CURRENT,
            Expr::param(0),
            0,
            Expr::sub(Expr::var(v), Expr::param(1)),
        );
        let s = b.read(SAVING, Expr::param(0), 0);
        b.write(
            SAVING,
            Expr::param(0),
            0,
            Expr::add(Expr::var(s), Expr::param(1)),
        );
        b.build().unwrap()
    }

    #[test]
    fn self_conflicting_multi_table_procs_merge_to_one_piece() {
        // Two instances of the same procedure conflict on both Current and
        // Saving → SC-cycle → the two RMW pairs must merge. PACMAN keeps
        // them as two independent slices — this is exactly the granularity
        // gap of Fig. 18.
        let p = Arc::new(two_table_proc(0, "P"));
        let chop = ChoppingGraph::analyze(&[Arc::clone(&p)]);
        assert_eq!(chop.pieces_of(0).len(), 1, "{:?}", chop.pieces);
        let pacman = LocalGraph::analyze(&p);
        assert_eq!(pacman.len(), 2, "PACMAN stays finer");
    }

    #[test]
    fn disjoint_single_table_procs_stay_chopped() {
        // One procedure touching only Current, another only Saving: no piece
        // of either conflicts with two pieces of the other.
        let mut a = ProcBuilder::new(ProcId::new(0), "A", 2);
        let v = a.read(CURRENT, Expr::param(0), 0);
        a.write(CURRENT, Expr::param(0), 0, Expr::var(v));
        let mut b = ProcBuilder::new(ProcId::new(1), "B", 2);
        let w = b.read(SAVING, Expr::param(0), 0);
        b.write(SAVING, Expr::param(0), 0, Expr::var(w));
        let chop =
            ChoppingGraph::analyze(&[Arc::new(a.build().unwrap()), Arc::new(b.build().unwrap())]);
        assert_eq!(chop.total_pieces(), 2);
    }

    #[test]
    fn chopping_is_never_finer_than_pacman() {
        let procs = vec![
            Arc::new(two_table_proc(0, "P")),
            Arc::new(two_table_proc(1, "Q")),
        ];
        let chop = ChoppingGraph::analyze(&procs);
        for (pi, p) in procs.iter().enumerate() {
            let pacman = LocalGraph::analyze(p);
            assert!(
                chop.pieces_of(pi).len() <= pacman.len(),
                "chopping produced finer pieces than PACMAN"
            );
        }
    }
}
