//! Intra-procedure analysis: slice decomposition (Algorithm 1, §4.1.1).
//!
//! A procedure is cut into a *maximal* set of slices such that
//!
//! 1. mutually data-dependent operations share a slice, and
//! 2. if two flow-dependent operations share a slice, every operation
//!    between them is in that slice too (contiguity);
//!
//! then slices are connected by flow-dependency edges and mutually
//! reachable slices are contracted (cycle breaking), yielding the local
//! dependency graph — Fig. 5(a)/(b) for the bank example.

use super::ops_data_dependent;
use super::union_find::UnionFind;
use pacman_common::SliceId;
use pacman_sproc::ProcedureDef;

/// One slice: a set of operation indices of the procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slice {
    /// Slice id (position in the local graph, ordered by first op).
    pub id: SliceId,
    /// Op indices in program order.
    pub ops: Vec<usize>,
}

/// The local dependency graph of one procedure.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    /// Slices ordered by their first operation.
    pub slices: Vec<Slice>,
    /// Direct edges `(from, to)`: `to` contains an op flow-dependent on an
    /// op in `from`.
    pub edges: Vec<(SliceId, SliceId)>,
}

impl LocalGraph {
    /// Run Algorithm 1 on a procedure.
    pub fn analyze(proc: &ProcedureDef) -> LocalGraph {
        let n = proc.ops.len();
        let mut uf = UnionFind::new(n);

        // Merge slices: mutually data-dependent ops into the same slice.
        for i in 0..n {
            for j in (i + 1)..n {
                if ops_data_dependent(&proc.ops[i], &proc.ops[j]) {
                    uf.union(i, j);
                }
            }
        }

        // Property (2): contiguity between flow-dependent ops of one slice.
        // Merging can create new in-slice flow pairs, so iterate to fixpoint.
        loop {
            let mut changed = false;
            for j in 0..n {
                for dep in proc.flow_deps_of(j) {
                    let i = dep.index();
                    if uf.same(i, j) {
                        for k in (i + 1)..j {
                            changed |= uf.union(i, k);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Break cycles: contract mutually (indirectly) dependent slices.
        // Slice-level edges come from op-level flow deps; a cycle can only
        // arise between interleaved slices. Iterate SCC contraction to
        // fixpoint (contraction can introduce new contiguity violations,
        // which are themselves cycles of length ≥ 1 in the flow relation —
        // handled by re-running both rules).
        loop {
            let groups = uf.groups();
            let id_of = |uf: &mut UnionFind, op: usize| -> usize {
                let root = uf.find(op);
                groups
                    .iter()
                    .position(|g| uf.find(g[0]) == root)
                    .expect("op in some group")
            };
            // Build slice-level adjacency.
            let m = groups.len();
            let mut adj = vec![vec![false; m]; m];
            for j in 0..n {
                for dep in proc.flow_deps_of(j) {
                    let (si, sj) = (id_of(&mut uf, dep.index()), id_of(&mut uf, j));
                    if si != sj {
                        adj[si][sj] = true;
                    }
                }
            }
            // Transitive closure (procedures are small).
            let mut reach = adj.clone();
            // Floyd-Warshall closure: the index form is the algorithm.
            #[allow(clippy::needless_range_loop)]
            for k in 0..m {
                for i in 0..m {
                    if reach[i][k] {
                        for j in 0..m {
                            if reach[k][j] {
                                reach[i][j] = true;
                            }
                        }
                    }
                }
            }
            let mut changed = false;
            for i in 0..m {
                for j in (i + 1)..m {
                    if reach[i][j] && reach[j][i] {
                        changed |= uf.union(groups[i][0], groups[j][0]);
                    }
                }
            }
            if !changed {
                break;
            }
            // Re-apply contiguity after contraction.
            loop {
                let mut c2 = false;
                for j in 0..n {
                    for dep in proc.flow_deps_of(j) {
                        let i = dep.index();
                        if uf.same(i, j) {
                            for k in (i + 1)..j {
                                c2 |= uf.union(i, k);
                            }
                        }
                    }
                }
                if !c2 {
                    break;
                }
            }
        }

        // Materialize slices and edges.
        let groups = uf.groups();
        let slices: Vec<Slice> = groups
            .iter()
            .enumerate()
            .map(|(i, ops)| Slice {
                id: SliceId::new(i as u32),
                ops: ops.clone(),
            })
            .collect();
        let slice_of = |op: usize| -> SliceId {
            SliceId::new(
                groups
                    .iter()
                    .position(|g| g.contains(&op))
                    .expect("op in a slice") as u32,
            )
        };
        let mut edges = Vec::new();
        for j in 0..n {
            for dep in proc.flow_deps_of(j) {
                let (si, sj) = (slice_of(dep.index()), slice_of(j));
                if si != sj && !edges.contains(&(si, sj)) {
                    edges.push((si, sj));
                }
            }
        }
        edges.sort();
        LocalGraph { slices, edges }
    }

    /// The slice containing op index `op`.
    pub fn slice_of(&self, op: usize) -> SliceId {
        self.slices
            .iter()
            .find(|s| s.ops.contains(&op))
            .map(|s| s.id)
            .expect("op not in any slice")
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the procedure decomposed into zero slices (no ops).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{ProcId, TableId};
    use pacman_sproc::{Expr, ProcBuilder};

    const FAMILY: TableId = TableId::new(0);
    const CURRENT: TableId = TableId::new(1);
    const SAVING: TableId = TableId::new(2);

    /// Fig. 2a / Fig. 3: Transfer decomposes into exactly T1{op0},
    /// T2{ops1-4}, T3{ops5,6}.
    fn transfer() -> ProcedureDef {
        let mut b = ProcBuilder::new(ProcId::new(0), "Transfer", 2);
        let dst = b.read(FAMILY, Expr::param(0), 0);
        b.guarded(Expr::not_null(Expr::var(dst)), |b| {
            let src_val = b.read(CURRENT, Expr::param(0), 0);
            b.write(
                CURRENT,
                Expr::param(0),
                0,
                Expr::sub(Expr::var(src_val), Expr::param(1)),
            );
            let dst_val = b.read(CURRENT, Expr::var(dst), 0);
            b.write(
                CURRENT,
                Expr::var(dst),
                0,
                Expr::add(Expr::var(dst_val), Expr::param(1)),
            );
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(Expr::var(bonus), Expr::int(1)),
            );
        });
        b.build().unwrap()
    }

    #[test]
    fn transfer_decomposes_like_fig3() {
        let g = LocalGraph::analyze(&transfer());
        let op_sets: Vec<Vec<usize>> = g.slices.iter().map(|s| s.ops.clone()).collect();
        assert_eq!(op_sets, vec![vec![0], vec![1, 2, 3, 4], vec![5, 6]]);
    }

    #[test]
    fn transfer_edges_match_fig5a() {
        // T2 and T3 are both flow-dependent on T1; no edge T2->T3.
        let g = LocalGraph::analyze(&transfer());
        assert_eq!(
            g.edges,
            vec![
                (SliceId::new(0), SliceId::new(1)),
                (SliceId::new(0), SliceId::new(2)),
            ]
        );
    }

    /// Fig. 4: Deposit decomposes into D1{0,1}, D2{2,3}, D3{4,5} with edges
    /// D1->D2 and D1->D3.
    fn deposit() -> ProcedureDef {
        const STATS: TableId = TableId::new(3);
        let mut b = ProcBuilder::new(ProcId::new(1), "Deposit", 3);
        let tmp = b.read(CURRENT, Expr::param(0), 0);
        b.write(
            CURRENT,
            Expr::param(0),
            0,
            Expr::add(Expr::var(tmp), Expr::param(1)),
        );
        let rich = Expr::gt(Expr::add(Expr::var(tmp), Expr::param(1)), Expr::int(10000));
        b.guarded(rich.clone(), |b| {
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(
                    Expr::var(bonus),
                    Expr::mul(
                        Expr::var(tmp),
                        Expr::Const(pacman_common::Value::Float(0.02)),
                    ),
                ),
            );
        });
        b.guarded(rich, |b| {
            let count = b.read(STATS, Expr::param(2), 0);
            b.write(
                STATS,
                Expr::param(2),
                0,
                Expr::add(Expr::var(count), Expr::int(1)),
            );
        });
        b.build().unwrap()
    }

    #[test]
    fn deposit_decomposes_like_fig4() {
        let g = LocalGraph::analyze(&deposit());
        let op_sets: Vec<Vec<usize>> = g.slices.iter().map(|s| s.ops.clone()).collect();
        assert_eq!(op_sets, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        assert_eq!(
            g.edges,
            vec![
                (SliceId::new(0), SliceId::new(1)),
                (SliceId::new(0), SliceId::new(2)),
            ]
        );
    }

    #[test]
    fn interleaved_rmw_merges_for_contiguity() {
        // read A; read B; write A(using A's read); write B(using B's read):
        // A-ops and B-ops are data-dependent pairs; the in-slice flow pair
        // (op0, op2) spans op1, so contiguity pulls op1 (and then op3 joins
        // via data dependence with op1).
        let ta = TableId::new(0);
        let tb = TableId::new(1);
        let mut b = ProcBuilder::new(ProcId::new(0), "X", 2);
        let va = b.read(ta, Expr::param(0), 0);
        let vb = b.read(tb, Expr::param(1), 0);
        b.write(ta, Expr::param(0), 0, Expr::var(va));
        b.write(tb, Expr::param(1), 0, Expr::var(vb));
        let p = b.build().unwrap();
        let g = LocalGraph::analyze(&p);
        assert_eq!(g.len(), 1, "interleaving forces a single slice: {g:?}");
    }

    #[test]
    fn independent_single_table_groups_stay_separate() {
        // Two RMW pairs on two tables, not interleaved: two slices, no edges.
        let ta = TableId::new(0);
        let tb = TableId::new(1);
        let mut b = ProcBuilder::new(ProcId::new(0), "Y", 2);
        let va = b.read(ta, Expr::param(0), 0);
        b.write(ta, Expr::param(0), 0, Expr::var(va));
        let vb = b.read(tb, Expr::param(1), 0);
        b.write(tb, Expr::param(1), 0, Expr::var(vb));
        let p = b.build().unwrap();
        let g = LocalGraph::analyze(&p);
        assert_eq!(g.len(), 2);
        assert!(
            g.edges.is_empty(),
            "no cross-slice flow deps: {:?}",
            g.edges
        );
    }

    #[test]
    fn read_only_ops_on_same_table_do_not_merge() {
        let t = TableId::new(0);
        let other = TableId::new(1);
        let mut b = ProcBuilder::new(ProcId::new(0), "R", 2);
        let v1 = b.read(t, Expr::param(0), 0);
        let v2 = b.read(t, Expr::param(1), 0);
        b.write(
            other,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v1), Expr::var(v2)),
        );
        let p = b.build().unwrap();
        let g = LocalGraph::analyze(&p);
        // Two read slices (no data dep between reads) + one write slice.
        assert_eq!(g.len(), 3);
        // The write depends on both reads.
        assert_eq!(
            g.edges,
            vec![
                (SliceId::new(0), SliceId::new(2)),
                (SliceId::new(1), SliceId::new(2)),
            ]
        );
    }

    #[test]
    fn slice_of_resolves_membership() {
        let g = LocalGraph::analyze(&transfer());
        assert_eq!(g.slice_of(0), SliceId::new(0));
        assert_eq!(g.slice_of(3), SliceId::new(1));
        assert_eq!(g.slice_of(6), SliceId::new(2));
    }
}
