//! Inter-procedure analysis: the global dependency graph (Algorithm 2,
//! §4.1.2).
//!
//! Slices from all procedures' local graphs are merged into *blocks*:
//! data-dependent slices share a block, mutually-reachable blocks are
//! contracted, and two slices of the same procedure that land in one block
//! merge into a single slice (properties 1-4). The result — Fig. 5(c) for
//! the bank example — drives both schedule construction and the per-block
//! core assignment of the recovery runtime.

use super::local::LocalGraph;
use super::ops_data_dependent;
use super::union_find::UnionFind;
use pacman_common::{BlockId, Error, ProcId, Result, SliceId, TableId};
use pacman_sproc::ProcedureDef;
use std::collections::HashMap;
use std::sync::Arc;

/// One node of the global dependency graph.
#[derive(Clone, Debug)]
pub struct Block {
    /// Block id (topological-friendly dense index).
    pub id: BlockId,
    /// Member slices as `(procedure, slice)` pairs.
    pub slices: Vec<(ProcId, SliceId)>,
}

/// The ops a given procedure contributes to a given block — one *piece* of
/// any transaction instantiated from that procedure (property 4 merged).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PieceTemplate {
    /// Block the piece belongs to.
    pub block: BlockId,
    /// Op indices (program order) executed by this piece.
    pub ops: Vec<usize>,
}

/// The global dependency graph over a set of stored procedures.
#[derive(Clone, Debug)]
pub struct GlobalGraph {
    /// Blocks ordered by their smallest member slice.
    pub blocks: Vec<Block>,
    /// Direct edges (deduped, sorted).
    pub edges: Vec<(BlockId, BlockId)>,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    reach: Vec<Vec<bool>>,
    templates: Vec<Vec<PieceTemplate>>,
    /// Shared op lists mirroring `templates` (cloned per piece at schedule
    /// construction without reallocating).
    template_ops: Vec<Vec<Arc<Vec<usize>>>>,
    write_block: HashMap<TableId, BlockId>,
    locals: Vec<LocalGraph>,
    procs: Vec<Arc<ProcedureDef>>,
}

impl GlobalGraph {
    /// Run Algorithm 2 over the registered procedures (indexed by
    /// `ProcId`), including the §5 key-computability validation.
    pub fn analyze(procs: &[Arc<ProcedureDef>]) -> Result<GlobalGraph> {
        let locals: Vec<LocalGraph> = procs.iter().map(|p| LocalGraph::analyze(p)).collect();
        Self::build(procs, locals, true)
    }

    /// Build the graph from an *arbitrary* per-procedure decomposition
    /// (each inner `Vec<usize>` is one piece's op set). Used to drive the
    /// recovery runtime with the transaction-chopping baseline of Fig. 18.
    /// Key-computability is not enforced: coarser pieces may keep a key's
    /// defining read inside the same piece, which only matters to dynamic
    /// analysis (such pieces degrade to conservative scheduling).
    pub fn analyze_decomposition(
        procs: &[Arc<ProcedureDef>],
        decomposition: &[Vec<Vec<usize>>],
    ) -> Result<GlobalGraph> {
        let locals: Vec<LocalGraph> = procs
            .iter()
            .zip(decomposition)
            .map(|(p, pieces)| local_from_pieces(p, pieces))
            .collect();
        Self::build(procs, locals, false)
    }

    fn build(
        procs: &[Arc<ProcedureDef>],
        locals: Vec<LocalGraph>,
        validate_keys: bool,
    ) -> Result<GlobalGraph> {
        // Flatten the slice universe.
        let mut universe: Vec<(usize, usize)> = Vec::new(); // (proc idx, slice idx)
        let mut base: Vec<usize> = Vec::with_capacity(procs.len());
        for (pi, lg) in locals.iter().enumerate() {
            base.push(universe.len());
            for si in 0..lg.len() {
                universe.push((pi, si));
            }
        }
        let flat = |pi: usize, si: usize| base[pi] + si;
        let n = universe.len();
        let mut uf = UnionFind::new(n);

        // Merge blocks: data-dependent slices share a block.
        for a in 0..n {
            for b in (a + 1)..n {
                let (pa, sa) = universe[a];
                let (pb, sb) = universe[b];
                let slice_a = &locals[pa].slices[sa];
                let slice_b = &locals[pb].slices[sb];
                let dep = slice_a.ops.iter().any(|&oa| {
                    slice_b
                        .ops
                        .iter()
                        .any(|&ob| ops_data_dependent(&procs[pa].ops[oa], &procs[pb].ops[ob]))
                });
                if dep {
                    uf.union(a, b);
                }
            }
        }

        // Build graph + break cycles, iterating contraction to fixpoint.
        loop {
            let groups = uf.groups();
            let m = groups.len();
            let mut root_to_group: HashMap<usize, usize> = HashMap::new();
            for (gi, g) in groups.iter().enumerate() {
                root_to_group.insert(uf.find(g[0]), gi);
            }
            let mut adj = vec![vec![false; m]; m];
            for (pi, lg) in locals.iter().enumerate() {
                for &(from, to) in &lg.edges {
                    let a = root_to_group[&uf.find(flat(pi, from.index()))];
                    let b = root_to_group[&uf.find(flat(pi, to.index()))];
                    if a != b {
                        adj[a][b] = true;
                    }
                }
            }
            let mut reach = adj.clone();
            // Floyd-Warshall closure: the index form is the algorithm.
            #[allow(clippy::needless_range_loop)]
            for k in 0..m {
                for i in 0..m {
                    if reach[i][k] {
                        for j in 0..m {
                            if reach[k][j] {
                                reach[i][j] = true;
                            }
                        }
                    }
                }
            }
            let mut changed = false;
            for i in 0..m {
                for j in (i + 1)..m {
                    if reach[i][j] && reach[j][i] {
                        changed |= uf.union(groups[i][0], groups[j][0]);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Materialize blocks.
        let groups = uf.groups();
        let blocks: Vec<Block> = groups
            .iter()
            .enumerate()
            .map(|(bi, g)| Block {
                id: BlockId::new(bi as u32),
                slices: g
                    .iter()
                    .map(|&u| {
                        let (pi, si) = universe[u];
                        (procs[pi].id, SliceId::new(si as u32))
                    })
                    .collect(),
            })
            .collect();
        let mut block_of = vec![0usize; n];
        for (bi, g) in groups.iter().enumerate() {
            for &u in g {
                block_of[u] = bi;
            }
        }

        // Edges over final blocks.
        let m = blocks.len();
        let mut adj = vec![vec![false; m]; m];
        for (pi, lg) in locals.iter().enumerate() {
            for &(from, to) in &lg.edges {
                let a = block_of[flat(pi, from.index())];
                let b = block_of[flat(pi, to.index())];
                if a != b {
                    adj[a][b] = true;
                }
            }
        }
        let mut edges = Vec::new();
        let mut preds = vec![Vec::new(); m];
        let mut succs = vec![Vec::new(); m];
        for a in 0..m {
            for b in 0..m {
                if adj[a][b] {
                    edges.push((BlockId::new(a as u32), BlockId::new(b as u32)));
                    succs[a].push(BlockId::new(b as u32));
                    preds[b].push(BlockId::new(a as u32));
                }
            }
        }
        edges.sort();
        let mut reach = adj;
        // Floyd-Warshall closure: the index form is the algorithm.
        #[allow(clippy::needless_range_loop)]
        for k in 0..m {
            for i in 0..m {
                if reach[i][k] {
                    for j in 0..m {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }

        // Property (4): per procedure, merge its slices within one block
        // into a single piece template. Templates are ordered by block id.
        let mut templates: Vec<Vec<PieceTemplate>> = Vec::with_capacity(procs.len());
        for (pi, lg) in locals.iter().enumerate() {
            let mut per_block: HashMap<usize, Vec<usize>> = HashMap::new();
            for (si, slice) in lg.slices.iter().enumerate() {
                per_block
                    .entry(block_of[flat(pi, si)])
                    .or_default()
                    .extend(slice.ops.iter().copied());
            }
            let mut list: Vec<PieceTemplate> = per_block
                .into_iter()
                .map(|(b, mut ops)| {
                    ops.sort_unstable();
                    PieceTemplate {
                        block: BlockId::new(b as u32),
                        ops,
                    }
                })
                .collect();
            list.sort_by_key(|t| t.block);
            templates.push(list);
        }

        // Written tables map to exactly one block (data-dependent slices
        // merged), recorded for ad-hoc write dispatch (§4.5).
        let mut write_block: HashMap<TableId, BlockId> = HashMap::new();
        for (pi, proc) in procs.iter().enumerate() {
            for (oi, op) in proc.ops.iter().enumerate() {
                if op.is_write() {
                    let si = locals[pi].slice_of(oi);
                    let b = BlockId::new(block_of[flat(pi, si.index())] as u32);
                    if let Some(prev) = write_block.insert(op.table, b) {
                        debug_assert_eq!(prev, b, "written table {} owned by two blocks", op.table);
                    }
                }
            }
        }

        let template_ops = templates
            .iter()
            .map(|list| list.iter().map(|t| Arc::new(t.ops.clone())).collect())
            .collect();
        let graph = GlobalGraph {
            blocks,
            edges,
            preds,
            succs,
            reach,
            templates,
            template_ops,
            write_block,
            locals,
            procs: procs.to_vec(),
        };
        if validate_keys {
            graph.validate_key_computability()?;
        }
        Ok(graph)
    }

    /// §5: every op's key and loop count must be computable from the
    /// procedure parameters plus variables produced by *other* pieces —
    /// otherwise dynamic analysis cannot derive read/write sets at replay
    /// time and the procedure is rejected.
    fn validate_key_computability(&self) -> Result<()> {
        for (pi, proc) in self.procs.iter().enumerate() {
            for tmpl in &self.templates[pi] {
                for &oi in &tmpl.ops {
                    let op = &proc.ops[oi];
                    let mut vars = Vec::new();
                    op.key.collect_vars(&mut vars);
                    if let Some(c) = &op.loop_count {
                        c.collect_vars(&mut vars);
                    }
                    for v in vars {
                        let def = proc.defining_op(v);
                        if tmpl.ops.contains(&def) {
                            return Err(Error::InvalidProcedure(format!(
                                "{}: key/count of op {} depends on {v} defined in \
                                 the same piece — read/write sets not computable (§5)",
                                proc.name, op.id
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Piece templates of a procedure, ordered by block id.
    pub fn templates_for(&self, proc: ProcId) -> &[PieceTemplate] {
        &self.templates[proc.index()]
    }

    /// Shared op list of template `k` of `proc` (cheap Arc clone per piece).
    pub fn template_ops_arc(&self, proc: ProcId, k: usize) -> &Arc<Vec<usize>> {
        &self.template_ops[proc.index()][k]
    }

    /// Direct predecessor blocks.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Direct successor blocks.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Whether `a` is a (transitive) ancestor of `b` — if neither is an
    /// ancestor of the other, their piece-sets may run in parallel (§4.1.2).
    pub fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        self.reach[a.index()][b.index()]
    }

    /// The block owning writes to `table` (ad-hoc dispatch, §4.5).
    pub fn block_for_write(&self, table: TableId) -> Option<BlockId> {
        self.write_block.get(&table).copied()
    }

    /// The local dependency graph of a procedure.
    pub fn local(&self, proc: ProcId) -> &LocalGraph {
        &self.locals[proc.index()]
    }

    /// The analyzed procedures.
    pub fn procs(&self) -> &[Arc<ProcedureDef>] {
        &self.procs
    }

    /// Render the GDG in the style of Fig. 21 (blocks with their member
    /// slices, then the edges).
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for b in &self.blocks {
            let _ = write!(s, "Block B{} {{ ", b.id.0);
            for (i, (p, sl)) in b.slices.iter().enumerate() {
                if i > 0 {
                    let _ = write!(s, ", ");
                }
                let _ = write!(s, "{}#{}", self.procs[p.index()].name, sl.0);
            }
            let _ = writeln!(s, " }}");
        }
        for (a, b) in &self.edges {
            let _ = writeln!(s, "B{} -> B{}", a.0, b.0);
        }
        s
    }
}

/// Wrap an arbitrary piece decomposition as a local graph: pieces become
/// slices (ordered by first op) and edges come from op-level flow deps.
fn local_from_pieces(proc: &ProcedureDef, pieces: &[Vec<usize>]) -> LocalGraph {
    let mut ordered: Vec<Vec<usize>> = pieces.to_vec();
    for p in &mut ordered {
        p.sort_unstable();
    }
    ordered.sort_by_key(|p| p.first().copied().unwrap_or(usize::MAX));
    let slice_of = |op: usize| -> usize {
        ordered
            .iter()
            .position(|p| p.contains(&op))
            .expect("op covered by decomposition")
    };
    let mut edges = Vec::new();
    for j in 0..proc.ops.len() {
        for dep in proc.flow_deps_of(j) {
            let (a, b) = (slice_of(dep.index()), slice_of(j));
            if a != b {
                let e = (
                    pacman_common::SliceId::new(a as u32),
                    pacman_common::SliceId::new(b as u32),
                );
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
    }
    edges.sort();
    LocalGraph {
        slices: ordered
            .into_iter()
            .enumerate()
            .map(|(i, ops)| crate::static_analysis::local::Slice {
                id: pacman_common::SliceId::new(i as u32),
                ops,
            })
            .collect(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::Value;
    use pacman_sproc::{Expr, ProcBuilder};

    const FAMILY: TableId = TableId::new(0);
    const CURRENT: TableId = TableId::new(1);
    const SAVING: TableId = TableId::new(2);
    const STATS: TableId = TableId::new(3);

    fn transfer() -> ProcedureDef {
        let mut b = ProcBuilder::new(ProcId::new(0), "Transfer", 2);
        let dst = b.read(FAMILY, Expr::param(0), 0);
        b.guarded(Expr::not_null(Expr::var(dst)), |b| {
            let src_val = b.read(CURRENT, Expr::param(0), 0);
            b.write(
                CURRENT,
                Expr::param(0),
                0,
                Expr::sub(Expr::var(src_val), Expr::param(1)),
            );
            let dst_val = b.read(CURRENT, Expr::var(dst), 0);
            b.write(
                CURRENT,
                Expr::var(dst),
                0,
                Expr::add(Expr::var(dst_val), Expr::param(1)),
            );
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(Expr::var(bonus), Expr::int(1)),
            );
        });
        b.build().unwrap()
    }

    fn deposit() -> ProcedureDef {
        let mut b = ProcBuilder::new(ProcId::new(1), "Deposit", 3);
        let tmp = b.read(CURRENT, Expr::param(0), 0);
        b.write(
            CURRENT,
            Expr::param(0),
            0,
            Expr::add(Expr::var(tmp), Expr::param(1)),
        );
        let rich = Expr::gt(Expr::add(Expr::var(tmp), Expr::param(1)), Expr::int(10000));
        b.guarded(rich.clone(), |b| {
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(
                    Expr::var(bonus),
                    Expr::mul(Expr::var(tmp), Expr::Const(Value::Float(0.02))),
                ),
            );
        });
        b.guarded(rich, |b| {
            let count = b.read(STATS, Expr::param(2), 0);
            b.write(
                STATS,
                Expr::param(2),
                0,
                Expr::add(Expr::var(count), Expr::int(1)),
            );
        });
        b.build().unwrap()
    }

    fn bank_gdg() -> GlobalGraph {
        GlobalGraph::analyze(&[Arc::new(transfer()), Arc::new(deposit())]).unwrap()
    }

    #[test]
    fn bank_example_blocks_match_fig5c() {
        let g = bank_gdg();
        // Bα{T1}, Bβ{T2,D1}, Bγ{T3,D2}, Bδ{D3}.
        let member_sets: Vec<Vec<(u32, u32)>> = g
            .blocks
            .iter()
            .map(|b| b.slices.iter().map(|(p, s)| (p.0, s.0)).collect())
            .collect();
        assert_eq!(
            member_sets,
            vec![
                vec![(0, 0)],         // Bα = {T1}
                vec![(0, 1), (1, 0)], // Bβ = {T2, D1}
                vec![(0, 2), (1, 1)], // Bγ = {T3, D2}
                vec![(1, 2)],         // Bδ = {D3}
            ]
        );
    }

    #[test]
    fn bank_example_edges_match_fig5c() {
        let g = bank_gdg();
        let e: Vec<(u32, u32)> = g.edges.iter().map(|(a, b)| (a.0, b.0)).collect();
        // Fig. 5c shows α→β, β→γ, β→δ and notes α→γ is implied; our direct
        // edge set keeps α→γ explicitly (T1→T3 is a real flow dependency).
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (1, 3)]);
        assert!(g.is_ancestor(BlockId::new(0), BlockId::new(3)));
        assert!(!g.is_ancestor(BlockId::new(2), BlockId::new(3)));
        assert!(!g.is_ancestor(BlockId::new(3), BlockId::new(2)));
    }

    #[test]
    fn piece_templates_follow_property_four() {
        let g = bank_gdg();
        let t = g.templates_for(ProcId::new(0));
        assert_eq!(
            t,
            &[
                PieceTemplate {
                    block: BlockId::new(0),
                    ops: vec![0]
                },
                PieceTemplate {
                    block: BlockId::new(1),
                    ops: vec![1, 2, 3, 4]
                },
                PieceTemplate {
                    block: BlockId::new(2),
                    ops: vec![5, 6]
                },
            ]
        );
        let d = g.templates_for(ProcId::new(1));
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].block, BlockId::new(1), "D1 lands in Bβ");
    }

    #[test]
    fn written_tables_map_to_unique_blocks() {
        let g = bank_gdg();
        assert_eq!(g.block_for_write(CURRENT), Some(BlockId::new(1)));
        assert_eq!(g.block_for_write(SAVING), Some(BlockId::new(2)));
        assert_eq!(g.block_for_write(STATS), Some(BlockId::new(3)));
        assert_eq!(g.block_for_write(FAMILY), None, "Family is read-only");
    }

    #[test]
    fn single_procedure_gdg_mirrors_local_graph() {
        let g = GlobalGraph::analyze(&[Arc::new(transfer())]).unwrap();
        assert_eq!(g.num_blocks(), 3);
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn key_computability_violation_rejected() {
        // Key of the write comes from a read in the same slice (same table
        // → data-dependent → same piece): must be rejected per §5.
        let t = TableId::new(0);
        let mut b = ProcBuilder::new(ProcId::new(0), "Bad", 1);
        let v = b.read(t, Expr::param(0), 0);
        b.write(t, Expr::var(v), 0, Expr::int(1));
        let p = b.build().unwrap();
        let r = GlobalGraph::analyze(&[Arc::new(p)]);
        assert!(matches!(r, Err(Error::InvalidProcedure(_))));
    }

    #[test]
    fn pretty_renders_blocks_and_edges() {
        let g = bank_gdg();
        let s = g.pretty();
        assert!(s.contains("Block B0 { Transfer#0 }"), "{s}");
        assert!(s.contains("B1 -> B2"), "{s}");
    }

    #[test]
    fn mutually_dependent_blocks_contract() {
        // Proc A: read t0 -> write t1 ; Proc B: read t1 -> write t0.
        // A's slices: {r0}, {w1}; B's: {r1}, {w0}. Data deps: A.w1~B.r1,
        // B.w0~A.r0 → blocks {A.r0,B.w0} and {A.w1,B.r1}; edges both ways →
        // contracted into one block.
        let t0 = TableId::new(0);
        let t1 = TableId::new(1);
        let mut a = ProcBuilder::new(ProcId::new(0), "A", 1);
        let va = a.read(t0, Expr::param(0), 0);
        a.write(t1, Expr::param(0), 0, Expr::var(va));
        let mut b = ProcBuilder::new(ProcId::new(1), "B", 1);
        let vb = b.read(t1, Expr::param(0), 0);
        b.write(t0, Expr::param(0), 0, Expr::var(vb));
        let g = GlobalGraph::analyze(&[Arc::new(a.build().unwrap()), Arc::new(b.build().unwrap())])
            .unwrap();
        assert_eq!(g.num_blocks(), 1, "{}", g.pretty());
        assert!(g.edges.is_empty());
        // Property 4: each proc contributes exactly one merged piece.
        assert_eq!(g.templates_for(ProcId::new(0)).len(), 1);
        assert_eq!(g.templates_for(ProcId::new(0))[0].ops, vec![0, 1]);
    }
}
