//! Small union-find used by the slice/block merge steps of Algorithms 1-2.

/// Union-find with path compression and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group members by representative, each group sorted ascending, groups
    /// ordered by their smallest member (deterministic output for tests and
    /// stable block ids).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 2));
        assert!(uf.union(2, 4));
        assert!(!uf.union(0, 4), "already merged");
        assert!(uf.same(0, 4));
        assert!(!uf.same(1, 4));
    }

    #[test]
    fn groups_are_deterministic() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 1);
        uf.union(3, 2);
        let g = uf.groups();
        assert_eq!(g, vec![vec![0], vec![1, 5], vec![2, 3], vec![4]]);
    }
}
