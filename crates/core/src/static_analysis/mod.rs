//! Compile-time analysis of stored procedures (§4.1).

pub mod chopping;
pub mod cost;
pub mod global;
pub mod local;
mod union_find;

pub use chopping::ChoppingGraph;
pub use cost::{static_replay_cost, CostModel, CostModelConfig};
pub use global::{Block, GlobalGraph, PieceTemplate};
pub use local::{LocalGraph, Slice};
pub use union_find::UnionFind;

use pacman_sproc::OpDef;

/// §4.1.1: "two operations are data-dependent if both operations access the
/// same table and at least one of them is a modification operation."
/// Inserts and deletes count as modifications.
pub fn ops_data_dependent(a: &OpDef, b: &OpDef) -> bool {
    a.table == b.table && (a.is_write() || b.is_write())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{OpId, TableId, VarId};
    use pacman_sproc::{Expr, OpKind};

    fn op(table: u32, write: bool) -> OpDef {
        OpDef {
            id: OpId::new(0),
            table: TableId::new(table),
            key: Expr::param(0),
            kind: if write {
                OpKind::Write {
                    col: 0,
                    value: Expr::int(1),
                }
            } else {
                OpKind::Read {
                    col: 0,
                    out: VarId::new(0),
                }
            },
            guard: None,
            loop_id: None,
            loop_count: None,
        }
    }

    #[test]
    fn data_dependence_is_table_granular() {
        assert!(ops_data_dependent(&op(0, true), &op(0, false)));
        assert!(ops_data_dependent(&op(0, true), &op(0, true)));
        assert!(
            !ops_data_dependent(&op(0, false), &op(0, false)),
            "read-read"
        );
        assert!(
            !ops_data_dependent(&op(0, true), &op(1, true)),
            "different tables"
        );
    }
}
