//! Replay-cost model for adaptive hybrid logging (ALR).
//!
//! Command logging re-executes every logged transaction at recovery;
//! logical logging reinstalls after-images. Following Yao et al.,
//! *Adaptive Logging for Distributed In-memory Databases*, the best format
//! is a **per-transaction** choice: command-log the transactions that are
//! cheap to replay, value-log the expensive ones. The [`CostModel`] makes
//! that choice from two estimators, both expressed in *interpreter-op
//! units* so they compose:
//!
//! * **static** — a per-procedure replay-cost estimate derived from the
//!   procedure's definition and local dependency graph (§4.1): every
//!   operation re-executes at replay, loops multiply by an assumed
//!   iteration count, guarded ops replay only when taken;
//! * **dynamic** — an EWMA of the *observed* per-procedure op counts
//!   (loops resolved against real parameters, guards as actually taken),
//!   fed mid-run through [`CostModel::observe`] — wired from the
//!   transaction driver via `Durability::observe_execution` — which
//!   corrects the static estimate once real invocations exist.
//!
//! A transaction logs as a **command** iff its estimated replay cost does
//! not exceed `inflation_threshold ×` the cost of reinstalling its write
//! set (`writes × apply_write_cost`). Measured on the bundled workloads,
//! plain single-tuple read-modify-write procedures bottom out at ~3 ops
//! per written tuple (every write pairs with a read plus key/guard
//! evaluation; column-level ops merge into one tuple image), while
//! multi-read, loop- and guard-heavy procedures (TPC-C NewOrder,
//! Smallbank WriteCheck/Amalgamate) run ~3.8-4+. The default threshold of
//! 3.5 splits those two populations, sending exactly the
//! replay-expensive tail to logical records. Everything is lock-free:
//! per-procedure EWMAs live in `AtomicU64`-encoded `f64`s, so the hot
//! commit path never blocks.

use crate::static_analysis::LocalGraph;
use pacman_common::ProcId;
use pacman_engine::CommitInfo;
use pacman_sproc::ProcedureDef;
use pacman_wal::{CommitClassifier, LogChoice};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs of the [`CostModel`].
#[derive(Clone, Debug)]
pub struct CostModelConfig {
    /// Cost of re-executing one interpreter operation at replay, in
    /// op-units (the model's base unit; only ratios matter).
    pub replay_op_cost: f64,
    /// Cost of reinstalling one after-image at replay, in op-units.
    pub apply_write_cost: f64,
    /// Assumed iteration count for loops whose bound is a runtime
    /// parameter (static analysis cannot resolve it).
    pub assumed_loop_iters: usize,
    /// A transaction logs logically when its estimated replay cost
    /// exceeds this multiple of its write-set apply cost.
    pub inflation_threshold: f64,
    /// EWMA smoothing factor for dynamic observations (0 disables the
    /// dynamic estimator entirely).
    pub ewma_alpha: f64,
    /// Observations per procedure before the EWMA overrides the static
    /// estimate.
    pub min_samples: u64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig {
            replay_op_cost: 1.0,
            apply_write_cost: 1.0,
            assumed_loop_iters: 8,
            inflation_threshold: 3.5,
            ewma_alpha: 0.2,
            min_samples: 32,
        }
    }
}

/// Per-procedure state of the model.
#[derive(Debug)]
struct ProcCost {
    /// Static estimate: replay op-cost for one invocation.
    static_cost: f64,
    /// EWMA of observed interpreter ops per invocation (f64 bits).
    ewma_ops: AtomicU64,
    samples: AtomicU64,
}

/// The adaptive-logging cost model: static per-procedure estimates plus a
/// runtime EWMA, implementing the WAL layer's [`CommitClassifier`].
#[derive(Debug)]
pub struct CostModel {
    config: CostModelConfig,
    procs: Vec<ProcCost>,
}

/// Static replay-cost estimate for one procedure, in op-units (exposed
/// for tests and the walkthrough example). The local dependency graph is
/// consulted for structure: a procedure that decomposes into many
/// independent slices replays with PACMAN's intra-transaction
/// parallelism, which shaves a little off its effective critical path.
pub fn static_replay_cost(proc: &ProcedureDef, config: &CostModelConfig) -> f64 {
    let lg = LocalGraph::analyze(proc);
    let mut weighted_ops = 0.0;
    for op in &proc.ops {
        let mut w = 1.0;
        if op.loop_id.is_some() {
            w *= config.assumed_loop_iters as f64;
        }
        if op.guard.is_some() {
            // A guarded op replays only when its predicate holds; charge
            // half on average.
            w *= 0.5;
        }
        weighted_ops += w;
    }
    // Mild parallelism discount: k independent slices overlap their
    // execution under the PACMAN schedule.
    let parallelism = (lg.len().max(1) as f64).sqrt();
    weighted_ops * config.replay_op_cost / parallelism
}

impl CostModel {
    /// Build the model for a procedure set (dense proc ids, as registered).
    pub fn new(procs: &[Arc<ProcedureDef>], config: CostModelConfig) -> CostModel {
        let max_id = procs
            .iter()
            .map(|p| p.id.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut table: Vec<ProcCost> = (0..max_id)
            .map(|_| ProcCost {
                static_cost: 1.0,
                ewma_ops: AtomicU64::new(1f64.to_bits()),
                samples: AtomicU64::new(0),
            })
            .collect();
        for p in procs {
            let entry = &mut table[p.id.index()];
            entry.static_cost = static_replay_cost(p, &config);
            // Seed the EWMA with the static prior (in raw op units) so
            // the first observations blend against it instead of racing
            // to define the initial value.
            let prior = entry.static_cost / config.replay_op_cost.max(1e-9);
            entry.ewma_ops = AtomicU64::new(prior.to_bits());
        }
        CostModel {
            config,
            procs: table,
        }
    }

    /// Build with default knobs.
    pub fn for_procs(procs: &[Arc<ProcedureDef>]) -> CostModel {
        CostModel::new(procs, CostModelConfig::default())
    }

    /// The current replay-cost estimate for `proc` in op-units: the
    /// static estimate until `min_samples` observations exist, then the
    /// runtime EWMA of observed op counts.
    pub fn replay_cost(&self, proc: ProcId) -> f64 {
        let Some(entry) = self.procs.get(proc.index()) else {
            return 1.0;
        };
        if entry.samples.load(Ordering::Relaxed) >= self.config.min_samples
            && self.config.ewma_alpha > 0.0
        {
            f64::from_bits(entry.ewma_ops.load(Ordering::Relaxed)) * self.config.replay_op_cost
        } else {
            entry.static_cost
        }
    }

    fn update_ewma(&self, entry: &ProcCost, observed: f64) {
        let alpha = self.config.ewma_alpha;
        // Lock-free EWMA: CAS the f64 bits; contention is rare and a lost
        // update only drops one sample.
        let mut cur = entry.ewma_ops.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = alpha * observed + (1.0 - alpha) * old;
            match entry.ewma_ops.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        entry.samples.fetch_add(1, Ordering::Relaxed);
    }
}

impl CommitClassifier for CostModel {
    fn classify(&self, proc: ProcId, info: &CommitInfo) -> LogChoice {
        let replay = self.replay_cost(proc);
        let apply = info.writes.len().max(1) as f64 * self.config.apply_write_cost;
        if replay > self.config.inflation_threshold * apply {
            LogChoice::Logical
        } else {
            LogChoice::Command
        }
    }

    fn observe(&self, proc: ProcId, replay_ops: f64, _writes: usize) {
        if self.config.ewma_alpha <= 0.0 {
            return;
        }
        if let Some(entry) = self.procs.get(proc.index()) {
            self.update_ewma(entry, replay_ops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Row, TableId, Value};
    use pacman_engine::{WriteKind, WriteRecord};
    use pacman_sproc::{Expr, ProcBuilder};

    const T: TableId = TableId::new(0);
    const U: TableId = TableId::new(1);

    fn light() -> Arc<ProcedureDef> {
        let mut b = ProcBuilder::new(ProcId::new(0), "Light", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        Arc::new(b.build().unwrap())
    }

    /// A loop of read-heavy iterations that funnels into one written
    /// tuple: expensive to re-execute, cheap to reinstall.
    fn heavy() -> Arc<ProcedureDef> {
        let mut b = ProcBuilder::new(ProcId::new(1), "Heavy", 2);
        b.repeat(Expr::param(1), |b| {
            let v = b.read(U, Expr::param(0), 0);
            b.write(U, Expr::param(0), 0, Expr::add(Expr::var(v), Expr::int(1)));
        });
        Arc::new(b.build().unwrap())
    }

    fn info(ops: u64, writes: usize) -> CommitInfo {
        CommitInfo {
            ts: 1,
            ops,
            writes: (0..writes)
                .map(|i| WriteRecord {
                    table: T,
                    key: i as u64,
                    kind: WriteKind::Update,
                    after: Some(std::sync::Arc::new(Row::from([Value::Int(0)]))),
                    prev_ts: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn static_estimate_orders_light_below_heavy() {
        let cfg = CostModelConfig::default();
        assert!(
            static_replay_cost(&light(), &cfg) < static_replay_cost(&heavy(), &cfg),
            "loop-heavy procedure must look more expensive"
        );
    }

    #[test]
    fn classifies_heavy_procs_logical_and_light_command() {
        let model = CostModel::for_procs(&[light(), heavy()]);
        // Light: 2 ops, 1 write → inflation 2 ≤ 3.5 → command.
        assert_eq!(
            model.classify(ProcId::new(0), &info(2, 1)),
            LogChoice::Command
        );
        // Heavy statically: 16 weighted ops funneling into 1 written
        // tuple → inflation 16 → logical.
        assert_eq!(
            model.classify(ProcId::new(1), &info(16, 1)),
            LogChoice::Logical
        );
    }

    #[test]
    fn ewma_feedback_flips_a_misjudged_procedure() {
        // Static view of `light`: 2 ops / 1 write → command. Feed runtime
        // evidence that invocations actually execute far more ops (say the
        // loop bound turned out huge): after min_samples the model must
        // switch to logical.
        let model = CostModel::new(
            &[light()],
            CostModelConfig {
                min_samples: 4,
                ..CostModelConfig::default()
            },
        );
        let p = ProcId::new(0);
        assert_eq!(model.classify(p, &info(2, 1)), LogChoice::Command);
        for _ in 0..8 {
            model.observe(p, 50.0, 1);
        }
        assert!(model.replay_cost(p) > 10.0, "EWMA should dominate");
        assert_eq!(model.classify(p, &info(2, 1)), LogChoice::Logical);
    }

    #[test]
    fn ewma_converges_toward_observations() {
        let model = CostModel::new(
            &[light()],
            CostModelConfig {
                min_samples: 1,
                ewma_alpha: 0.5,
                ..CostModelConfig::default()
            },
        );
        for _ in 0..32 {
            model.observe(ProcId::new(0), 10.0, 1);
        }
        let got = model.replay_cost(ProcId::new(0));
        assert!((got - 10.0).abs() < 0.5, "replay_cost = {got}");
    }

    #[test]
    fn wide_write_sets_stay_commands() {
        // Inflation is per written tuple: a transaction whose op count
        // tracks its write count (bulk update) re-executes as cheaply as
        // it reinstalls, so it stays a command record.
        let model = CostModel::for_procs(&[light()]);
        assert_eq!(
            model.classify(ProcId::new(0), &info(40, 20)),
            LogChoice::Command
        );
    }

    #[test]
    fn unknown_proc_ids_fall_back_gracefully() {
        let model = CostModel::for_procs(&[light()]);
        let choice = model.classify(ProcId::new(7), &info(1, 1));
        assert_eq!(choice, LogChoice::Command);
        model.observe(ProcId::new(7), 1.0, 1);
    }
}
