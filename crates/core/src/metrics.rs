//! Recovery-time instrumentation (the Fig. 20 breakdown).
//!
//! Four cost buckets, accumulated per thread with relaxed atomics:
//!
//! * **useful work** — executing piece operations / installing images;
//! * **data loading** — reading log files off the devices and
//!   deserializing them into schedules;
//! * **parameter checking** — dynamic analysis: computing piece access
//!   sets and building the conflict-chain DAG;
//! * **scheduling** — waiting on gates/queues and coordinating threads.

use pacman_obs::{Counter, MetricsRegistry};
use std::time::{Duration, Instant};

/// Shared recovery metrics.
///
/// The fields are detached [`pacman_obs::Counter`] handles: each session
/// owns its own counters (parallel tests never cross-talk), and
/// [`RecoveryMetrics::register_into`] binds them into a registry under
/// `recovery.*` names so a registry snapshot sees the live session.
#[derive(Debug, Default)]
pub struct RecoveryMetrics {
    work_ns: Counter,
    load_ns: Counter,
    param_ns: Counter,
    sched_ns: Counter,
    txns: Counter,
    writes: Counter,
    /// Checkpoint shards loaded because a blocked admission wanted them
    /// (lazy reload's on-demand path).
    ondemand_shard_loads: Counter,
    /// Checkpoint shards loaded by the background cheapest-first sweep.
    background_shard_loads: Counter,
    /// Replication: apply batches (seal-delimited) fully applied.
    applied_batches: Counter,
    /// Replication: shipped log bytes applied to the standby.
    applied_log_bytes: Counter,
}

/// A snapshot of the four buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Seconds spent executing operations.
    pub work: f64,
    /// Seconds spent loading + deserializing log data.
    pub load: f64,
    /// Seconds spent in dynamic analysis (access sets, conflict chains).
    pub param: f64,
    /// Seconds spent waiting/coordinating.
    pub sched: f64,
}

impl Breakdown {
    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.work + self.load + self.param + self.sched
    }

    /// Fractions of the total per bucket `(work, load, param, sched)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (self.work / t, self.load / t, self.param / t, self.sched / t)
    }
}

impl RecoveryMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to the useful-work bucket.
    #[inline]
    pub fn add_work(&self, d: Duration) {
        self.work_ns.add(d.as_nanos() as u64);
    }

    /// Add to the data-loading bucket.
    #[inline]
    pub fn add_load(&self, d: Duration) {
        self.load_ns.add(d.as_nanos() as u64);
    }

    /// Add to the parameter-checking bucket.
    #[inline]
    pub fn add_param(&self, d: Duration) {
        self.param_ns.add(d.as_nanos() as u64);
    }

    /// Add to the scheduling bucket.
    #[inline]
    pub fn add_sched(&self, d: Duration) {
        self.sched_ns.add(d.as_nanos() as u64);
    }

    /// Count a replayed transaction.
    #[inline]
    pub fn count_txn(&self) {
        self.txns.inc();
    }

    /// Count applied write images.
    #[inline]
    pub fn count_writes(&self, n: u64) {
        self.writes.add(n);
    }

    /// Time `f`, attributing the elapsed time via `add`.
    #[inline]
    pub fn timed<T>(&self, add: impl Fn(&Self, Duration), f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        add(self, t0.elapsed());
        out
    }

    /// Count a checkpoint shard loaded on demand (a blocked admission
    /// wanted it) vs. by the background sweep.
    #[inline]
    pub fn count_shard_load(&self, ondemand: bool) {
        if ondemand {
            self.ondemand_shard_loads.inc();
        } else {
            self.background_shard_loads.inc();
        }
    }

    /// Count one seal-delimited replication apply batch (its shipped log
    /// bytes included) as fully applied on a standby.
    #[inline]
    pub fn count_applied_batch(&self, log_bytes: u64) {
        self.applied_batches.inc();
        self.applied_log_bytes.add(log_bytes);
    }

    /// Replication apply batches fully applied (standby side).
    pub fn applied_batches(&self) -> u64 {
        self.applied_batches.get()
    }

    /// Shipped log bytes applied (standby side).
    pub fn applied_log_bytes(&self) -> u64 {
        self.applied_log_bytes.get()
    }

    /// Checkpoint shards loaded on demand (lazy reload).
    pub fn ondemand_shard_loads(&self) -> u64 {
        self.ondemand_shard_loads.get()
    }

    /// Checkpoint shards loaded by the background sweep (lazy reload).
    pub fn background_shard_loads(&self) -> u64 {
        self.background_shard_loads.get()
    }

    /// Transactions replayed.
    pub fn txns(&self) -> u64 {
        self.txns.get()
    }

    /// Write images applied.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Bind this session's counters into `registry` under `recovery.*`
    /// names. Rebinding (a later session) replaces the previous handles,
    /// so the registry always reflects the latest recovery.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.bind_counter("recovery.work_ns", &self.work_ns);
        registry.bind_counter("recovery.load_ns", &self.load_ns);
        registry.bind_counter("recovery.param_ns", &self.param_ns);
        registry.bind_counter("recovery.sched_ns", &self.sched_ns);
        registry.bind_counter("recovery.txns", &self.txns);
        registry.bind_counter("recovery.writes", &self.writes);
        registry.bind_counter("recovery.ondemand_shard_loads", &self.ondemand_shard_loads);
        registry.bind_counter(
            "recovery.background_shard_loads",
            &self.background_shard_loads,
        );
        registry.bind_counter("recovery.applied_batches", &self.applied_batches);
        registry.bind_counter("recovery.applied_log_bytes", &self.applied_log_bytes);
    }

    /// Snapshot the buckets.
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            work: self.work_ns.get() as f64 / 1e9,
            load: self.load_ns.get() as f64 / 1e9,
            param: self.param_ns.get() as f64 / 1e9,
            sched: self.sched_ns.get() as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let m = RecoveryMetrics::new();
        m.add_work(Duration::from_millis(10));
        m.add_work(Duration::from_millis(20));
        m.add_load(Duration::from_millis(5));
        m.count_txn();
        m.count_writes(3);
        let b = m.breakdown();
        assert!((b.work - 0.030).abs() < 1e-6);
        assert!((b.load - 0.005).abs() < 1e-6);
        assert_eq!(m.txns(), 1);
        assert_eq!(m.writes(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = RecoveryMetrics::new();
        m.add_work(Duration::from_millis(6));
        m.add_sched(Duration::from_millis(2));
        m.add_param(Duration::from_millis(1));
        m.add_load(Duration::from_millis(1));
        let (w, l, p, s) = m.breakdown().fractions();
        assert!((w + l + p + s - 1.0).abs() < 1e-9);
        assert!(w > s && s > 0.0);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = RecoveryMetrics::new().breakdown();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn shard_load_counters_split_by_origin() {
        let m = RecoveryMetrics::new();
        m.count_shard_load(true);
        m.count_shard_load(false);
        m.count_shard_load(false);
        assert_eq!(m.ondemand_shard_loads(), 1);
        assert_eq!(m.background_shard_loads(), 2);
    }

    #[test]
    fn timed_attributes_elapsed() {
        let m = RecoveryMetrics::new();
        let v = m.timed(RecoveryMetrics::add_param, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(m.breakdown().param >= 0.004);
    }
}
