//! Recovery-time instrumentation (the Fig. 20 breakdown).
//!
//! Four cost buckets, accumulated per thread with relaxed atomics:
//!
//! * **useful work** — executing piece operations / installing images;
//! * **data loading** — reading log files off the devices and
//!   deserializing them into schedules;
//! * **parameter checking** — dynamic analysis: computing piece access
//!   sets and building the conflict-chain DAG;
//! * **scheduling** — waiting on gates/queues and coordinating threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared recovery metrics.
#[derive(Debug, Default)]
pub struct RecoveryMetrics {
    work_ns: AtomicU64,
    load_ns: AtomicU64,
    param_ns: AtomicU64,
    sched_ns: AtomicU64,
    txns: AtomicU64,
    writes: AtomicU64,
    /// Checkpoint shards loaded because a blocked admission wanted them
    /// (lazy reload's on-demand path).
    ondemand_shard_loads: AtomicU64,
    /// Checkpoint shards loaded by the background cheapest-first sweep.
    background_shard_loads: AtomicU64,
    /// Replication: apply batches (seal-delimited) fully applied.
    applied_batches: AtomicU64,
    /// Replication: shipped log bytes applied to the standby.
    applied_log_bytes: AtomicU64,
}

/// A snapshot of the four buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Seconds spent executing operations.
    pub work: f64,
    /// Seconds spent loading + deserializing log data.
    pub load: f64,
    /// Seconds spent in dynamic analysis (access sets, conflict chains).
    pub param: f64,
    /// Seconds spent waiting/coordinating.
    pub sched: f64,
}

impl Breakdown {
    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.work + self.load + self.param + self.sched
    }

    /// Fractions of the total per bucket `(work, load, param, sched)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (self.work / t, self.load / t, self.param / t, self.sched / t)
    }
}

impl RecoveryMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to the useful-work bucket.
    #[inline]
    pub fn add_work(&self, d: Duration) {
        self.work_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Add to the data-loading bucket.
    #[inline]
    pub fn add_load(&self, d: Duration) {
        self.load_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Add to the parameter-checking bucket.
    #[inline]
    pub fn add_param(&self, d: Duration) {
        self.param_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Add to the scheduling bucket.
    #[inline]
    pub fn add_sched(&self, d: Duration) {
        self.sched_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Count a replayed transaction.
    #[inline]
    pub fn count_txn(&self) {
        self.txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Count applied write images.
    #[inline]
    pub fn count_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Time `f`, attributing the elapsed time via `add`.
    #[inline]
    pub fn timed<T>(&self, add: impl Fn(&Self, Duration), f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        add(self, t0.elapsed());
        out
    }

    /// Count a checkpoint shard loaded on demand (a blocked admission
    /// wanted it) vs. by the background sweep.
    #[inline]
    pub fn count_shard_load(&self, ondemand: bool) {
        if ondemand {
            self.ondemand_shard_loads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.background_shard_loads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one seal-delimited replication apply batch (its shipped log
    /// bytes included) as fully applied on a standby.
    #[inline]
    pub fn count_applied_batch(&self, log_bytes: u64) {
        self.applied_batches.fetch_add(1, Ordering::Relaxed);
        self.applied_log_bytes
            .fetch_add(log_bytes, Ordering::Relaxed);
    }

    /// Replication apply batches fully applied (standby side).
    pub fn applied_batches(&self) -> u64 {
        self.applied_batches.load(Ordering::Relaxed)
    }

    /// Shipped log bytes applied (standby side).
    pub fn applied_log_bytes(&self) -> u64 {
        self.applied_log_bytes.load(Ordering::Relaxed)
    }

    /// Checkpoint shards loaded on demand (lazy reload).
    pub fn ondemand_shard_loads(&self) -> u64 {
        self.ondemand_shard_loads.load(Ordering::Relaxed)
    }

    /// Checkpoint shards loaded by the background sweep (lazy reload).
    pub fn background_shard_loads(&self) -> u64 {
        self.background_shard_loads.load(Ordering::Relaxed)
    }

    /// Transactions replayed.
    pub fn txns(&self) -> u64 {
        self.txns.load(Ordering::Relaxed)
    }

    /// Write images applied.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Snapshot the buckets.
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            work: self.work_ns.load(Ordering::Relaxed) as f64 / 1e9,
            load: self.load_ns.load(Ordering::Relaxed) as f64 / 1e9,
            param: self.param_ns.load(Ordering::Relaxed) as f64 / 1e9,
            sched: self.sched_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let m = RecoveryMetrics::new();
        m.add_work(Duration::from_millis(10));
        m.add_work(Duration::from_millis(20));
        m.add_load(Duration::from_millis(5));
        m.count_txn();
        m.count_writes(3);
        let b = m.breakdown();
        assert!((b.work - 0.030).abs() < 1e-6);
        assert!((b.load - 0.005).abs() < 1e-6);
        assert_eq!(m.txns(), 1);
        assert_eq!(m.writes(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = RecoveryMetrics::new();
        m.add_work(Duration::from_millis(6));
        m.add_sched(Duration::from_millis(2));
        m.add_param(Duration::from_millis(1));
        m.add_load(Duration::from_millis(1));
        let (w, l, p, s) = m.breakdown().fractions();
        assert!((w + l + p + s - 1.0).abs() < 1e-9);
        assert!(w > s && s > 0.0);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = RecoveryMetrics::new().breakdown();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn shard_load_counters_split_by_origin() {
        let m = RecoveryMetrics::new();
        m.count_shard_load(true);
        m.count_shard_load(false);
        m.count_shard_load(false);
        assert_eq!(m.ondemand_shard_loads(), 1);
        assert_eq!(m.background_shard_loads(), 2);
    }

    #[test]
    fn timed_attributes_elapsed() {
        let m = RecoveryMetrics::new();
        let v = m.timed(RecoveryMetrics::add_param, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(m.breakdown().param >= 0.004);
    }
}
