//! The PACMAN recovery runtime (§4.2.1, §4.3.2, §4.4).
//!
//! Piece-sets become *active* when their gate opens:
//!
//! * **pure static** — all piece-sets of the previous batch finished
//!   (batch barrier) and upstream blocks of the same batch finished; the
//!   piece-set then executes *serially* on one thread (§4.2.1, the
//!   Fig. 18 baseline);
//! * **synchronous** — same gates, but the piece-set executes with
//!   fine-grained parallelism over the dynamic-analysis DAG (Fig. 9a);
//! * **pipelined** — no batch barrier: a piece-set starts once its own
//!   block finished the previous batch and its upstream blocks finished
//!   the same batch (Fig. 9b).
//!
//! A pool of exactly `threads` workers drains the active sets. The paper
//! statically pins cores to blocks in proportion to the estimated piece
//! distribution (Fig. 10); we compute the same distribution
//! ([`assign_cores`], used for reporting) but let idle workers help other
//! blocks — a work-sharing refinement of the same assignment that the
//! paper's own Fig. 20 analysis (scheduling = 30% of time) motivates.

pub mod exec;

use crate::dynamic::{build_piece_dag, PieceDag};
use crate::metrics::RecoveryMetrics;
use crate::schedule::ExecutionSchedule;
use crate::static_analysis::GlobalGraph;
use pacman_common::{Error, Result};
use pacman_engine::{Database, RecoveryGate};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How batches are replayed (the Fig. 18/19 ablation axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Static analysis only: serial piece-sets, batch barrier.
    PureStatic,
    /// Static + intra-batch dynamic analysis, batch barrier (Fig. 9a).
    Synchronous,
    /// Static + intra- and inter-batch parallelism (Fig. 9b).
    Pipelined,
}

impl ReplayMode {
    /// Display label used by the benches.
    pub fn label(&self) -> &'static str {
        match self {
            ReplayMode::PureStatic => "pure-static",
            ReplayMode::Synchronous => "synchronous",
            ReplayMode::Pipelined => "pipelined",
        }
    }
}

/// §4.4: assign `total_threads` cores over blocks proportionally to the
/// estimated piece distribution, at least one core per block. Used for
/// reporting and as the paper's reference policy.
pub fn assign_cores(piece_estimate: &[usize], total_threads: usize) -> Vec<usize> {
    let blocks = piece_estimate.len();
    if blocks == 0 {
        return Vec::new();
    }
    let total: usize = piece_estimate.iter().sum();
    let budget = total_threads.max(1);
    if total == 0 {
        return vec![1; blocks];
    }
    let mut assignment: Vec<usize> = piece_estimate
        .iter()
        .map(|&c| ((c * budget) as f64 / total as f64).floor() as usize)
        .collect();
    for a in assignment.iter_mut() {
        if *a == 0 {
            *a = 1;
        }
    }
    let mut spent: usize = assignment.iter().sum();
    while spent > budget.max(blocks) {
        let (i, _) = assignment
            .iter()
            .enumerate()
            .max_by_key(|(_, &a)| a)
            .expect("non-empty");
        if assignment[i] <= 1 {
            break;
        }
        assignment[i] -= 1;
        spent -= 1;
    }
    let mut order: Vec<usize> = (0..blocks).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(piece_estimate[i]));
    let mut k = 0;
    while spent < budget {
        assignment[order[k % blocks]] += 1;
        spent += 1;
        k += 1;
    }
    assignment
}

/// Execution state of one *activated* piece-set.
struct ActiveSet {
    #[allow(dead_code)] // diagnostic field (batch identity in debugging)
    batch: usize,
    block: usize,
    entry: Arc<BatchEntry>,
    /// Dynamic-analysis DAG, built *lazily* by the first worker that picks
    /// the set (not at activation): parameter checking is a large share of
    /// replay time, and deferring it lets online recovery's priority order
    /// govern where that time goes. Empty (pre-set) in pure-static mode.
    dag: std::sync::OnceLock<PieceDag>,
    /// Claimed by the worker building the DAG.
    dag_claim: AtomicBool,
    ready: Mutex<VecDeque<u32>>,
    remaining: AtomicUsize,
    /// Pure-static: the whole set is claimed and executed by one worker.
    serial_claim: AtomicBool,
    done_flag: AtomicBool,
}

/// One batch, as received from the loader.
struct BatchEntry {
    schedule: ExecutionSchedule,
    /// Per block: whether the piece-set has been activated yet.
    activated: Vec<AtomicBool>,
}

struct Shared {
    entries: Mutex<Vec<Arc<BatchEntry>>>,
    loading_done: AtomicBool,
    /// Per block: number of completed batches (== next batch to activate).
    done: Vec<AtomicU64>,
    active: Mutex<Vec<Arc<ActiveSet>>>,
    wake_mutex: Mutex<()>,
    wake_cv: Condvar,
    error: Mutex<Option<Error>>,
    aborted: AtomicBool,
    mode: ReplayMode,
    /// Online recovery: per-block batch watermarks are published here and
    /// blocks a waiting transaction needs are executed first.
    gate: Option<Arc<RecoveryGate>>,
    /// Blocks in ascending estimated-work order (from the §4.4 piece
    /// distribution). Among *wanted* blocks the runtime drains the
    /// cheapest first — shortest-job-first on-demand redo: when many
    /// admissions wait, the partition that can unblock someone soonest is
    /// finished first.
    sjf_order: Vec<usize>,
}

impl Shared {
    fn notify(&self) {
        let _g = self.wake_mutex.lock();
        self.wake_cv.notify_all();
    }

    /// Record one completed batch for `block`, publishing the watermark to
    /// the online-recovery gate if one is attached.
    fn complete_batch(&self, block: usize) {
        let done = self.done[block].fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(gate) = &self.gate {
            gate.publish(block, done);
        }
    }

    fn fail(&self, e: Error) {
        let mut err = self.error.lock();
        if err.is_none() {
            *err = Some(e);
        }
        self.aborted.store(true, Ordering::Release);
        self.notify();
    }

    /// Gate check for block `b`'s next piece-set (batch `done[b]`).
    fn gate_open(&self, gdg: &GlobalGraph, block: usize, batch: u64) -> bool {
        let preds_ok = gdg
            .preds(pacman_common::BlockId::new(block as u32))
            .iter()
            .all(|a| self.done[a.index()].load(Ordering::Acquire) > batch);
        match self.mode {
            ReplayMode::Pipelined => preds_ok,
            ReplayMode::Synchronous | ReplayMode::PureStatic => {
                preds_ok && self.done.iter().all(|d| d.load(Ordering::Acquire) >= batch)
            }
        }
    }

    /// Whether every block has finished every loaded batch.
    fn finished(&self) -> bool {
        if !self.loading_done.load(Ordering::Acquire) {
            return false;
        }
        let total = self.entries.lock().len() as u64;
        self.done.iter().all(|d| d.load(Ordering::Acquire) >= total)
    }
}

/// Activate every piece-set whose gate is open. Returns true if anything
/// new became active. DAG construction (parameter checking) happens here,
/// on the activating thread.
///
/// When an online-recovery gate reports blocked admissions, a first sweep
/// activates only the *wanted* blocks; cold blocks are activated (and
/// their parameter-checking cost paid) only once no wanted block could be
/// advanced — on-demand redo extends to dynamic analysis, not just
/// execution order.
fn try_activate(shared: &Shared, gdg: &GlobalGraph) -> bool {
    if shared.gate.as_ref().is_some_and(|g| g.any_wanted()) {
        let wanted = activation_sweep(shared, gdg, true);
        if wanted {
            return true;
        }
    }
    activation_sweep(shared, gdg, false)
}

/// One activation sweep; `wanted_only` restricts it to blocks with
/// blocked admissions.
fn activation_sweep(shared: &Shared, gdg: &GlobalGraph, wanted_only: bool) -> bool {
    let mut activated_any = false;
    loop {
        let mut progressed = false;
        for &block in &shared.sjf_order {
            if wanted_only && !shared.gate.as_ref().is_some_and(|g| g.is_wanted(block)) {
                continue;
            }
            let batch = shared.done[block].load(Ordering::Acquire);
            let entry = {
                let entries = shared.entries.lock();
                match entries.get(batch as usize) {
                    Some(e) => Arc::clone(e),
                    None => continue,
                }
            };
            if entry.activated[block].swap(true, Ordering::AcqRel) {
                continue; // someone else is on it
            }
            if !shared.gate_open(gdg, block, batch) {
                entry.activated[block].store(false, Ordering::Release);
                continue;
            }
            let pieces = &entry.schedule.piece_sets[block];
            if pieces.pieces.is_empty() {
                // Nothing to do: complete immediately and keep sweeping.
                shared.complete_batch(block);
                progressed = true;
                continue;
            }
            // Pure static mode never consults the DAG (no dynamic
            // analysis — that is the Fig. 18/19 baseline); otherwise the
            // DAG is built lazily by the first worker to pick the set.
            let n = pieces.pieces.len();
            let dag = std::sync::OnceLock::new();
            if shared.mode == ReplayMode::PureStatic {
                let _ = dag.set(PieceDag {
                    indeg: Vec::new(),
                    dependents: Vec::new(),
                    initial_ready: Vec::new(),
                    n,
                });
            }
            let set = Arc::new(ActiveSet {
                batch: batch as usize,
                block,
                entry: Arc::clone(&entry),
                dag,
                dag_claim: AtomicBool::new(false),
                ready: Mutex::new(VecDeque::new()),
                remaining: AtomicUsize::new(n),
                serial_claim: AtomicBool::new(false),
                done_flag: AtomicBool::new(false),
            });
            shared.active.lock().push(set);
            activated_any = true;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    if activated_any {
        shared.notify();
    }
    activated_any
}

fn complete_set(shared: &Shared, gdg: &GlobalGraph, set: &ActiveSet) {
    set.done_flag.store(true, Ordering::Release);
    shared.complete_batch(set.block);
    shared
        .active
        .lock()
        .retain(|s| !s.done_flag.load(Ordering::Acquire));
    try_activate(shared, gdg);
    shared.notify();
}

/// Run the replay: consume schedules from `rx` (produced by the reload
/// pipeline in batch order) and execute every piece-set with exactly
/// `threads` workers. `piece_estimate` is the §4.4 distribution (reported
/// through `assign_cores`; the pool shares idle capacity across blocks).
pub fn run_replay(
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    mode: ReplayMode,
    threads: usize,
    piece_estimate: &[usize],
    metrics: &Arc<RecoveryMetrics>,
    rx: crossbeam::channel::Receiver<ExecutionSchedule>,
) -> Result<()> {
    run_replay_gated(db, gdg, mode, threads, piece_estimate, metrics, rx, None)
}

/// [`run_replay`] with an online-recovery gate attached: per-block batch
/// watermarks are published as piece-sets complete, and piece-sets of
/// blocks a waiting transaction needs (`gate.is_wanted`) are picked first —
/// the runtime half of on-demand redo.
#[allow(clippy::too_many_arguments)]
pub fn run_replay_gated(
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    mode: ReplayMode,
    threads: usize,
    piece_estimate: &[usize],
    metrics: &Arc<RecoveryMetrics>,
    rx: crossbeam::channel::Receiver<ExecutionSchedule>,
    gate: Option<Arc<RecoveryGate>>,
) -> Result<()> {
    let blocks = gdg.num_blocks();
    if blocks == 0 {
        while rx.recv().is_ok() {}
        return Ok(());
    }
    // The reference static assignment (kept for §4.4 fidelity/reporting).
    let _assignment = assign_cores(piece_estimate, threads);
    let mut sjf_order: Vec<usize> = (0..blocks).collect();
    sjf_order.sort_by_key(|&b| piece_estimate.get(b).copied().unwrap_or(0));

    let shared = Arc::new(Shared {
        entries: Mutex::new(Vec::new()),
        loading_done: AtomicBool::new(false),
        done: (0..blocks).map(|_| AtomicU64::new(0)).collect(),
        active: Mutex::new(Vec::new()),
        wake_mutex: Mutex::new(()),
        wake_cv: Condvar::new(),
        error: Mutex::new(None),
        aborted: AtomicBool::new(false),
        mode,
        gate,
        sjf_order,
    });

    crossbeam::thread::scope(|scope| {
        // Intake thread.
        {
            let shared = Arc::clone(&shared);
            let gdg = Arc::clone(gdg);
            scope.spawn(move |_| {
                for schedule in rx.iter() {
                    let activated = (0..schedule.piece_sets.len())
                        .map(|_| AtomicBool::new(false))
                        .collect();
                    shared.entries.lock().push(Arc::new(BatchEntry {
                        schedule,
                        activated,
                    }));
                    try_activate(&shared, &gdg);
                    shared.notify();
                }
                shared.loading_done.store(true, Ordering::Release);
                shared.notify();
            });
        }

        for worker in 0..threads.max(1) {
            let shared = Arc::clone(&shared);
            let gdg = Arc::clone(gdg);
            let db = Arc::clone(db);
            let metrics = Arc::clone(metrics);
            scope.spawn(move |_| worker_loop(&db, &gdg, &shared, worker, &metrics));
        }
    })
    .expect("replay scope");

    let err = shared.error.lock().take();
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// How many pieces a worker grabs per shared-queue access. Amortizes lock
/// traffic for the common tiny-piece case.
const CHUNK: usize = 16;

/// Pick a chunk of runnable pieces from the active sets. `rot` staggers
/// the scan start per worker to avoid convoying on one set. When an
/// online-recovery gate reports blocked admissions, sets of the wanted
/// blocks are scanned first (on-demand redo priority). The picking worker
/// builds a set's dynamic-analysis DAG on first contact.
fn pick_work(
    shared: &Shared,
    rot: usize,
    metrics: &RecoveryMetrics,
) -> Option<(Arc<ActiveSet>, Vec<u32>)> {
    let active = shared.active.lock();
    let n = active.len();
    let prioritize = shared.gate.as_ref().is_some_and(|g| g.any_wanted());
    let passes = if prioritize { 2 } else { 1 };
    // The priority pass visits wanted blocks cheapest-first (SJF, see
    // `Shared::sjf_order`); the normal pass keeps the rotating scan.
    let sjf_rank: Vec<usize> = if prioritize {
        let mut rank = vec![usize::MAX; shared.sjf_order.len()];
        for (pos, &b) in shared.sjf_order.iter().enumerate() {
            rank[b] = pos;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| rank.get(active[i].block).copied().unwrap_or(usize::MAX));
        order
    } else {
        Vec::new()
    };
    let mut to_build: Option<Arc<ActiveSet>> = None;
    'scan: for pass in 0..passes {
        for k in 0..n {
            let set = if pass == 0 && prioritize {
                &active[sjf_rank[k]]
            } else {
                &active[(rot + k) % n]
            };
            if prioritize && pass == 0 {
                let wanted = shared.gate.as_ref().is_some_and(|g| g.is_wanted(set.block));
                if !wanted {
                    continue;
                }
            }
            if set.done_flag.load(Ordering::Acquire) {
                continue;
            }
            if shared.mode == ReplayMode::PureStatic {
                if !set.serial_claim.swap(true, Ordering::AcqRel) {
                    return Some((Arc::clone(set), Vec::new()));
                }
                continue;
            }
            if set.dag.get().is_none() {
                if set.dag_claim.swap(true, Ordering::AcqRel) {
                    continue; // another worker is building this set's DAG
                }
                // Claimed: build outside the active-sets lock below, so
                // parameter checking never serializes the other workers.
                to_build = Some(Arc::clone(set));
                break 'scan;
            }
            let mut ready = set.ready.lock();
            if !ready.is_empty() {
                let take = ready.len().min(CHUNK);
                let chunk: Vec<u32> = ready.drain(..take).collect();
                return Some((Arc::clone(set), chunk));
            }
        }
    }
    drop(active);
    let set = to_build?;
    let t0 = Instant::now();
    let pieces = &set.entry.schedule.piece_sets[set.block];
    let dag = build_piece_dag(pieces, &set.entry.schedule.txns);
    metrics.add_param(t0.elapsed());
    let initial: Vec<u32> = dag.initial_ready.clone();
    let _ = set.dag.set(dag);
    let chunk: Vec<u32> = {
        let mut ready = set.ready.lock();
        ready.extend(initial);
        let take = ready.len().min(CHUNK);
        ready.drain(..take).collect()
    };
    shared.notify();
    if chunk.is_empty() {
        return None;
    }
    Some((set, chunk))
}

fn worker_loop(
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    shared: &Shared,
    worker: usize,
    metrics: &RecoveryMetrics,
) {
    let mut rot = worker;
    loop {
        if shared.aborted.load(Ordering::Acquire) {
            return;
        }
        let Some((set, chunk)) = pick_work(shared, rot, metrics) else {
            if shared.finished() {
                shared.notify();
                return;
            }
            // Heal any activation missed by the benign CAS race in
            // try_activate, then block briefly.
            let t0 = Instant::now();
            if !try_activate(shared, gdg) {
                let mut g = shared.wake_mutex.lock();
                shared
                    .wake_cv
                    .wait_for(&mut g, std::time::Duration::from_micros(200));
            }
            metrics.add_sched(t0.elapsed());
            continue;
        };
        rot = rot.wrapping_add(1);

        if shared.mode == ReplayMode::PureStatic {
            // Pure static: execute the whole set serially (§4.2.1).
            let pieces = &set.entry.schedule.piece_sets[set.block];
            let t0 = Instant::now();
            for p in &pieces.pieces {
                match exec::execute_piece(db, p, &set.entry.schedule.txns) {
                    Ok(w) => metrics.count_writes(w),
                    Err(e) => {
                        shared.fail(e);
                        return;
                    }
                }
            }
            metrics.add_work(t0.elapsed());
            complete_set(shared, gdg, &set);
            continue;
        }

        // Work-following: execute the chunk, preferring locally-unblocked
        // pieces; spill surplus back to the shared queue.
        let pieces = &set.entry.schedule.piece_sets[set.block];
        let dag = set.dag.get().expect("chunk implies a built DAG");
        let mut local: Vec<u32> = chunk;
        let mut finished = 0usize;
        let t0 = Instant::now();
        while let Some(pi) = local.pop() {
            match exec::execute_piece(db, &pieces.pieces[pi as usize], &set.entry.schedule.txns) {
                Ok(w) => metrics.count_writes(w),
                Err(e) => {
                    shared.fail(e);
                    return;
                }
            }
            finished += 1;
            for &d in &dag.dependents[pi as usize] {
                if dag.indeg[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    local.push(d);
                }
            }
            if local.len() > 2 * CHUNK {
                let spill: Vec<u32> = local.drain(..CHUNK).collect();
                set.ready.lock().extend(spill);
                shared.notify();
            }
        }
        metrics.add_work(t0.elapsed());
        if set.remaining.fetch_sub(finished, Ordering::AcqRel) == finished {
            complete_set(shared, gdg, &set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_assignment_is_proportional_with_floor_one() {
        // Fig. 10's example: 20/40/20/20 % over 5 cores.
        let a = assign_cores(&[20, 40, 20, 20], 5);
        assert_eq!(a.iter().sum::<usize>(), 5);
        assert_eq!(a[1], 2, "hottest block gets the extra core: {a:?}");
        assert!(a.iter().all(|&x| x >= 1));
    }

    #[test]
    fn core_assignment_handles_more_blocks_than_threads() {
        let a = assign_cores(&[5, 5, 5, 5], 2);
        assert_eq!(a, vec![1, 1, 1, 1], "every block keeps one core");
    }

    #[test]
    fn core_assignment_zero_estimate() {
        let a = assign_cores(&[0, 0], 8);
        assert_eq!(a, vec![1, 1]);
        assert!(assign_cores(&[], 8).is_empty());
    }

    #[test]
    fn core_assignment_large_pool() {
        let a = assign_cores(&[10, 30], 24);
        assert_eq!(a.iter().sum::<usize>(), 24);
        assert!(a[1] > a[0] * 2, "{a:?}");
    }
}
