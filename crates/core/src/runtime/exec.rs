//! Piece and record execution against the recovering database.
//!
//! All installs are latch-free (§6.2: "CLR-P does not require latching
//! during recovery"): the schedule already serializes every conflicting
//! pair, so a plain last-writer-wins install at the original commit
//! timestamp is safe and produces the single-version recovered state.

use crate::schedule::{Piece, PieceOps, TxnCtx};
use pacman_common::{Result, Timestamp};
use pacman_engine::{execute_ops, Database, ReplayAccess, WriteKind, WriteRecord};
use pacman_sproc::{ProcRegistry, VarStore};
use pacman_wal::{LogPayload, TxnLogRecord};

/// Install a tuple-level write set at timestamp `ts`.
pub fn apply_writes(db: &Database, ts: Timestamp, writes: &[WriteRecord]) -> Result<()> {
    for w in writes {
        let table = db.table(w.table)?;
        match (w.kind, &w.after) {
            (WriteKind::Delete, _) | (_, None) => {
                table.install_lww(w.key, ts, None);
            }
            (_, Some(row)) => {
                table.install_lww(w.key, ts, Some(row.clone()));
            }
        }
    }
    Ok(())
}

/// Execute one piece of the schedule (a procedure slice or an ad-hoc write
/// group). Returns the number of write images applied for metrics.
pub fn execute_piece(db: &Database, piece: &Piece, txns: &[TxnCtx]) -> Result<u64> {
    match &piece.ops {
        PieceOps::Slice(ops) => {
            let ctx = &txns[piece.txn];
            let proc = ctx.proc.as_ref().expect("slice piece has a procedure");
            let mut access = ReplayAccess::new(db, piece.ts);
            let executed = execute_ops(proc, ops, &ctx.params, &ctx.vars, &mut access)?;
            Ok(executed)
        }
        PieceOps::Writes(writes) => {
            apply_writes(db, piece.ts, writes)?;
            Ok(writes.len() as u64)
        }
    }
}

/// Fully re-execute one log record in commitment order (the CLR path: one
/// thread, reads included).
pub fn replay_record_serial(
    db: &Database,
    registry: &ProcRegistry,
    record: &TxnLogRecord,
) -> Result<()> {
    match &record.payload {
        LogPayload::Command { proc, params } => {
            let def = registry.get(*proc)?;
            let vars = VarStore::new(def.num_vars);
            let ops: Vec<usize> = (0..def.ops.len()).collect();
            let mut access = ReplayAccess::new(db, record.ts);
            execute_ops(def, &ops, params, &vars, &mut access).map(|_| ())
        }
        LogPayload::Writes { writes, .. } | LogPayload::TaggedWrites { writes, .. } => {
            apply_writes(db, record.ts, writes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{ProcId, Row, TableId, Value};
    use pacman_engine::Catalog;
    use pacman_sproc::{Expr, ProcBuilder};
    use std::sync::Arc;

    const T: TableId = TableId::new(0);

    fn db() -> Database {
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        for k in 0..4 {
            db.seed_row(T, k, Row::from([Value::Int(100)])).unwrap();
        }
        db
    }

    #[test]
    fn apply_writes_installs_and_deletes() {
        let db = db();
        apply_writes(
            &db,
            9,
            &[
                WriteRecord {
                    table: T,
                    key: 0,
                    kind: WriteKind::Update,
                    after: Some(std::sync::Arc::new(Row::from([Value::Int(55)]))),
                    prev_ts: 0,
                },
                WriteRecord {
                    table: T,
                    key: 1,
                    kind: WriteKind::Delete,
                    after: None,
                    prev_ts: 0,
                },
            ],
        )
        .unwrap();
        let chain = db.table(T).unwrap().get(0).unwrap();
        assert_eq!(chain.newest().1.unwrap().col(0), &Value::Int(55));
        assert!(db.table(T).unwrap().get(1).unwrap().newest().1.is_none());
    }

    #[test]
    fn serial_replay_of_command_record() {
        let db = db();
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "Inc", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();
        let rec = TxnLogRecord {
            ts: 7,
            payload: LogPayload::Command {
                proc: ProcId::new(0),
                params: Arc::from(vec![Value::Int(2), Value::Int(5)]),
            },
        };
        replay_record_serial(&db, &reg, &rec).unwrap();
        let chain = db.table(T).unwrap().get(2).unwrap();
        let (ts, row) = chain.newest();
        assert_eq!(ts, 7);
        assert_eq!(row.unwrap().col(0), &Value::Int(105));
    }
}
