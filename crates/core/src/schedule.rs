//! Execution schedules (§4.2, Fig. 6).
//!
//! A reloaded log batch turns into an execution schedule: every command
//! record is instantiated into one *piece* per piece template of its
//! procedure, every ad-hoc record into one write-only piece per block that
//! owns the written tables (§4.5). Pieces belonging to the same block form
//! a *piece-set*, ordered by the transactions' commitment order.

use crate::static_analysis::GlobalGraph;
use pacman_common::{BlockId, Result, Timestamp};
use pacman_engine::WriteRecord;
use pacman_sproc::{Params, ProcRegistry, ProcedureDef, VarStore};
use pacman_wal::{LogBatch, LogPayload};
use std::sync::Arc;

/// Per-transaction context shared by all of its pieces.
#[derive(Debug)]
pub struct TxnCtx {
    /// Commit timestamp (replay order).
    pub ts: Timestamp,
    /// The procedure, for command records.
    pub proc: Option<Arc<ProcedureDef>>,
    /// Invocation parameters (empty for ad-hoc records).
    pub params: Params,
    /// Cross-piece variable store (Fig. 7's `dst` hand-off).
    pub vars: Arc<VarStore>,
}

/// What a piece executes.
#[derive(Clone, Debug)]
pub enum PieceOps {
    /// A slice of the transaction's procedure: op indices to interpret.
    Slice(Arc<Vec<usize>>),
    /// Write images to install (ad-hoc transactions, §4.5).
    Writes(Arc<Vec<WriteRecord>>),
}

/// One transaction piece (`P_b^t` in the paper's notation).
#[derive(Clone, Debug)]
pub struct Piece {
    /// Index into [`ExecutionSchedule::txns`].
    pub txn: usize,
    /// The transaction's commit timestamp.
    pub ts: Timestamp,
    /// The work.
    pub ops: PieceOps,
}

/// All pieces of one block, in commitment order.
#[derive(Debug)]
pub struct PieceSet {
    /// The block these pieces instantiate.
    pub block: BlockId,
    /// Pieces ordered by `ts`.
    pub pieces: Vec<Piece>,
}

/// The execution schedule of one log batch.
#[derive(Debug)]
pub struct ExecutionSchedule {
    /// Batch sequence number.
    pub batch_index: u64,
    /// Transactions in commitment order.
    pub txns: Vec<TxnCtx>,
    /// One piece-set per GDG block (some possibly empty).
    pub piece_sets: Vec<PieceSet>,
}

impl ExecutionSchedule {
    /// Instantiate the schedule for `batch` using the global dependency
    /// graph (Fig. 6's construction).
    pub fn build(gdg: &GlobalGraph, registry: &ProcRegistry, batch: &LogBatch) -> Result<Self> {
        let mut piece_sets: Vec<PieceSet> = (0..gdg.num_blocks())
            .map(|b| PieceSet {
                block: BlockId::new(b as u32),
                pieces: Vec::new(),
            })
            .collect();
        let mut txns = Vec::with_capacity(batch.records.len());
        // Scratch arena reused across the whole batch: the outer grouping
        // vector keeps its capacity from record to record (the per-group
        // vectors move into their pieces' `Arc`s), and write-only
        // transactions share one empty param/var context instead of
        // allocating fresh ones per record.
        let mut by_block: Vec<(BlockId, Vec<WriteRecord>)> = Vec::new();
        let empty_params: Params = Arc::from(Vec::new());
        let empty_vars = Arc::new(VarStore::new(0));

        for record in &batch.records {
            let txn_idx = txns.len();
            match &record.payload {
                LogPayload::Command { proc, params } => {
                    let def = Arc::clone(registry.get(*proc)?);
                    let vars = Arc::new(VarStore::new(def.num_vars));
                    for (k, tmpl) in gdg.templates_for(*proc).iter().enumerate() {
                        piece_sets[tmpl.block.index()].pieces.push(Piece {
                            txn: txn_idx,
                            ts: record.ts,
                            ops: PieceOps::Slice(Arc::clone(gdg.template_ops_arc(*proc, k))),
                        });
                    }
                    txns.push(TxnCtx {
                        ts: record.ts,
                        proc: Some(def),
                        params: Arc::clone(params),
                        vars,
                    });
                }
                // Tuple-level records — ad-hoc transactions (§4.5) and
                // adaptive logical records — short-circuit re-execution:
                // their write sets install directly, dispatched per block.
                LogPayload::Writes { writes, .. } | LogPayload::TaggedWrites { writes, .. } => {
                    // Group the write set by owning block (§4.5): each write
                    // operation is dispatched to the piece-subset of the
                    // block that owns its table.
                    by_block.clear();
                    for w in writes {
                        let block = gdg.block_for_write(w.table).unwrap_or(BlockId::new(0));
                        match by_block.iter_mut().find(|(b, _)| *b == block) {
                            Some((_, v)) => v.push(w.clone()),
                            None => by_block.push((block, vec![w.clone()])),
                        }
                    }
                    for (block, group) in by_block.drain(..) {
                        piece_sets[block.index()].pieces.push(Piece {
                            txn: txn_idx,
                            ts: record.ts,
                            ops: PieceOps::Writes(Arc::new(group)),
                        });
                    }
                    txns.push(TxnCtx {
                        ts: record.ts,
                        proc: None,
                        params: Arc::clone(&empty_params),
                        vars: Arc::clone(&empty_vars),
                    });
                }
            }
        }
        Ok(ExecutionSchedule {
            batch_index: batch.index,
            txns,
            piece_sets,
        })
    }

    /// Piece counts per block — the workload-distribution estimate used for
    /// core assignment (§4.4, Fig. 10).
    pub fn piece_counts(&self) -> Vec<usize> {
        self.piece_sets.iter().map(|s| s.pieces.len()).collect()
    }

    /// Total number of pieces.
    pub fn total_pieces(&self) -> usize {
        self.piece_sets.iter().map(|s| s.pieces.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{ProcId, TableId, Value};
    use pacman_engine::WriteKind;
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_wal::TxnLogRecord;

    const FAMILY: TableId = TableId::new(0);
    const CURRENT: TableId = TableId::new(1);
    const SAVING: TableId = TableId::new(2);
    const STATS: TableId = TableId::new(3);

    fn registry() -> ProcRegistry {
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "Transfer", 2);
        let dst = b.read(FAMILY, Expr::param(0), 0);
        b.guarded(Expr::not_null(Expr::var(dst)), |b| {
            let src_val = b.read(CURRENT, Expr::param(0), 0);
            b.write(
                CURRENT,
                Expr::param(0),
                0,
                Expr::sub(Expr::var(src_val), Expr::param(1)),
            );
            let dst_val = b.read(CURRENT, Expr::var(dst), 0);
            b.write(
                CURRENT,
                Expr::var(dst),
                0,
                Expr::add(Expr::var(dst_val), Expr::param(1)),
            );
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(Expr::var(bonus), Expr::int(1)),
            );
        });
        reg.register(b.build().unwrap()).unwrap();
        let mut b = ProcBuilder::new(ProcId::new(1), "Deposit", 3);
        let tmp = b.read(CURRENT, Expr::param(0), 0);
        b.write(
            CURRENT,
            Expr::param(0),
            0,
            Expr::add(Expr::var(tmp), Expr::param(1)),
        );
        let rich = Expr::gt(Expr::add(Expr::var(tmp), Expr::param(1)), Expr::int(10000));
        b.guarded(rich.clone(), |b| {
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(Expr::var(bonus), Expr::int(2)),
            );
        });
        b.guarded(rich, |b| {
            let count = b.read(STATS, Expr::param(2), 0);
            b.write(
                STATS,
                Expr::param(2),
                0,
                Expr::add(Expr::var(count), Expr::int(1)),
            );
        });
        reg.register(b.build().unwrap()).unwrap();
        reg
    }

    fn cmd(ts: u64, proc: u32, params: Vec<Value>) -> TxnLogRecord {
        TxnLogRecord {
            ts,
            payload: LogPayload::Command {
                proc: ProcId::new(proc),
                params: params.into(),
            },
        }
    }

    /// The Fig. 6 batch: Txn1 = Transfer, Txn2 = Deposit, Txn3 = Transfer.
    #[test]
    fn fig6_schedule_shape() {
        let reg = registry();
        let gdg = GlobalGraph::analyze(reg.all()).unwrap();
        let batch = LogBatch {
            index: 0,
            records: vec![
                cmd(10, 0, vec![Value::Int(1), Value::Int(5)]),
                cmd(11, 1, vec![Value::Int(2), Value::Int(7), Value::Int(0)]),
                cmd(12, 0, vec![Value::Int(3), Value::Int(9)]),
            ],
        };
        let s = ExecutionSchedule::build(&gdg, &reg, &batch).unwrap();
        assert_eq!(s.txns.len(), 3);
        assert_eq!(s.piece_sets.len(), 4);
        // PSα: txn1, txn3 (Transfer's T1). PSβ: all three. PSγ: all three.
        // PSδ: txn2 only.
        let counts = s.piece_counts();
        assert_eq!(counts, vec![2, 3, 3, 1]);
        // Pieces are in commitment order.
        let beta = &s.piece_sets[1];
        assert_eq!(
            beta.pieces.iter().map(|p| p.ts).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(s.total_pieces(), 9);
    }

    #[test]
    fn adhoc_records_dispatch_writes_by_block() {
        let reg = registry();
        let gdg = GlobalGraph::analyze(reg.all()).unwrap();
        let writes = vec![
            WriteRecord {
                table: CURRENT,
                key: 1,
                kind: WriteKind::Update,
                after: Some(std::sync::Arc::new(pacman_common::Row::from([Value::Int(
                    5,
                )]))),
                prev_ts: 0,
            },
            WriteRecord {
                table: SAVING,
                key: 1,
                kind: WriteKind::Update,
                after: Some(std::sync::Arc::new(pacman_common::Row::from([Value::Int(
                    6,
                )]))),
                prev_ts: 0,
            },
        ];
        let batch = LogBatch {
            index: 3,
            records: vec![TxnLogRecord {
                ts: 20,
                payload: LogPayload::Writes {
                    writes,
                    physical: false,
                    adhoc: true,
                },
            }],
        };
        let s = ExecutionSchedule::build(&gdg, &reg, &batch).unwrap();
        // Current is owned by Bβ (index 1), Saving by Bγ (index 2).
        assert_eq!(s.piece_counts(), vec![0, 1, 1, 0]);
        match &s.piece_sets[1].pieces[0].ops {
            PieceOps::Writes(w) => assert_eq!(w.len(), 1),
            other => panic!("expected writes piece, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_gives_empty_schedule() {
        let reg = registry();
        let gdg = GlobalGraph::analyze(reg.all()).unwrap();
        let s = ExecutionSchedule::build(&gdg, &reg, &LogBatch::default()).unwrap();
        assert_eq!(s.total_pieces(), 0);
        assert!(s.txns.is_empty());
    }
}
