//! Dynamic analysis: fine-grained intra-batch parallelism (§4.3.1).
//!
//! At replay time the parameter values of every piece are known — from the
//! log records and from upstream pieces that already ran — so each piece's
//! exact read/write set can be computed (Fig. 8). Pieces of one piece-set
//! that touch disjoint key spaces execute in parallel; conflicting pieces
//! are chained in commitment order. The result is a per-piece-set DAG with
//! per-key last-writer/reader chains:
//!
//! * a write depends on the previous writer *and* all readers since;
//! * a read depends on the previous writer only;
//! * read-read pairs never conflict.

use crate::schedule::{PieceOps, PieceSet, TxnCtx};
use pacman_common::{Key, TableId};
use pacman_sproc::compute_accesses;
use std::collections::HashMap;
use std::sync::atomic::AtomicU32;

/// Dependency DAG over the pieces of one piece-set.
#[derive(Debug)]
pub struct PieceDag {
    /// Remaining unmet dependencies per piece (consumed during execution).
    pub indeg: Vec<AtomicU32>,
    /// Forward adjacency: pieces unblocked by each piece.
    pub dependents: Vec<Vec<u32>>,
    /// Pieces with no dependencies (execution seeds).
    pub initial_ready: Vec<u32>,
    /// Number of pieces.
    pub n: usize,
}

#[derive(Default)]
struct KeyState {
    last_writer: Option<u32>,
    readers: Vec<u32>,
}

/// Build the conflict DAG for `set`. This is the "parameter checking" cost
/// of Fig. 20.
pub fn build_piece_dag(set: &PieceSet, txns: &[TxnCtx]) -> PieceDag {
    let n = set.pieces.len();
    let mut deps: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut keys: HashMap<(TableId, Key), KeyState> = HashMap::new();
    // Pieces whose access set could not be computed serialize against
    // everything around them.
    let mut last_opaque: Option<u32> = None;
    let mut since_opaque: Vec<u32> = Vec::new();

    for (i, piece) in set.pieces.iter().enumerate() {
        let i = i as u32;
        // Resolve the piece's deduplicated access set (write dominates).
        let mut acc: HashMap<(TableId, Key), bool> = HashMap::new();
        let mut opaque = false;
        match &piece.ops {
            PieceOps::Slice(ops) => {
                let ctx = &txns[piece.txn];
                let proc = ctx.proc.as_ref().expect("slice piece has a procedure");
                match compute_accesses(proc, ops, &ctx.params, Some(&ctx.vars)) {
                    Ok(list) => {
                        for a in list {
                            let e = acc.entry((a.table, a.key)).or_insert(false);
                            *e |= a.write;
                        }
                    }
                    Err(_) => opaque = true,
                }
            }
            PieceOps::Writes(writes) => {
                for w in writes.iter() {
                    acc.insert((w.table, w.key), true);
                }
            }
        }

        let mut my_deps: Vec<u32> = Vec::new();
        if opaque {
            // Depends on everything since (and including) the last opaque.
            my_deps.extend(since_opaque.iter().copied());
            if let Some(o) = last_opaque {
                my_deps.push(o);
            }
            last_opaque = Some(i);
            since_opaque.clear();
            // Conservative: future key accesses must also wait for this
            // piece; model by clearing chains so everyone re-chains through
            // the opaque barrier.
            keys.clear();
        } else {
            if let Some(o) = last_opaque {
                my_deps.push(o);
            }
            for ((table, key), write) in &acc {
                let st = keys.entry((*table, *key)).or_default();
                if *write {
                    if let Some(w) = st.last_writer {
                        my_deps.push(w);
                    }
                    my_deps.extend(st.readers.iter().copied());
                    st.last_writer = Some(i);
                    st.readers.clear();
                } else {
                    if let Some(w) = st.last_writer {
                        my_deps.push(w);
                    }
                    st.readers.push(i);
                }
            }
            since_opaque.push(i);
        }
        my_deps.sort_unstable();
        my_deps.dedup();
        my_deps.retain(|&d| d != i);
        deps[i as usize] = my_deps;
    }

    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = Vec::with_capacity(n);
    let mut initial_ready = Vec::new();
    for (i, d) in deps.iter().enumerate() {
        indeg.push(AtomicU32::new(d.len() as u32));
        if d.is_empty() {
            initial_ready.push(i as u32);
        }
        for &p in d {
            dependents[p as usize].push(i as u32);
        }
    }
    PieceDag {
        indeg,
        dependents,
        initial_ready,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Piece;
    use pacman_common::{BlockId, ProcId, Row, Value};
    use pacman_engine::{WriteKind, WriteRecord};
    use pacman_sproc::{Expr, Params, ProcBuilder, ProcedureDef, VarStore};
    use std::sync::Arc;

    const T: TableId = TableId::new(0);

    /// A single-slice RMW procedure on table T with key = param 0.
    fn rmw_proc() -> Arc<ProcedureDef> {
        let mut b = ProcBuilder::new(ProcId::new(0), "RMW", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        Arc::new(b.build().unwrap())
    }

    fn txn_ctx(proc: &Arc<ProcedureDef>, ts: u64, key: i64) -> TxnCtx {
        TxnCtx {
            ts,
            proc: Some(Arc::clone(proc)),
            params: Params::from(vec![Value::Int(key), Value::Int(1)]),
            vars: Arc::new(VarStore::new(proc.num_vars)),
        }
    }

    fn slice_piece(txn: usize, ts: u64) -> Piece {
        Piece {
            txn,
            ts,
            ops: PieceOps::Slice(Arc::new(vec![0, 1])),
        }
    }

    /// Fig. 8: pieces on distinct keys run in parallel; same-key pieces
    /// chain in order.
    #[test]
    fn disjoint_keys_parallel_conflicting_chain() {
        let proc = rmw_proc();
        // Keys: Amy(1), Bob(2), Amy(1)  →  piece 2 depends on piece 0 only.
        let txns = vec![
            txn_ctx(&proc, 10, 1),
            txn_ctx(&proc, 11, 2),
            txn_ctx(&proc, 12, 1),
        ];
        let set = PieceSet {
            block: BlockId::new(0),
            pieces: (0..3).map(|i| slice_piece(i, 10 + i as u64)).collect(),
        };
        let dag = build_piece_dag(&set, &txns);
        assert_eq!(dag.initial_ready, vec![0, 1]);
        assert_eq!(dag.dependents[0], vec![2]);
        assert!(dag.dependents[1].is_empty());
        assert_eq!(dag.indeg[2].load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn writes_pieces_conflict_via_keys() {
        let w = |key: u64| -> Piece {
            Piece {
                txn: 0,
                ts: 1,
                ops: PieceOps::Writes(Arc::new(vec![WriteRecord {
                    table: T,
                    key,
                    kind: WriteKind::Update,
                    after: Some(std::sync::Arc::new(Row::from([Value::Int(0)]))),
                    prev_ts: 0,
                }])),
            }
        };
        let txns = vec![TxnCtx {
            ts: 1,
            proc: None,
            params: Params::from(vec![]),
            vars: Arc::new(VarStore::new(0)),
        }];
        let set = PieceSet {
            block: BlockId::new(0),
            pieces: vec![w(5), w(5), w(6)],
        };
        let dag = build_piece_dag(&set, &txns);
        assert_eq!(dag.initial_ready, vec![0, 2]);
        assert_eq!(dag.dependents[0], vec![1]);
    }

    /// Readers between writers: the second writer waits for both the first
    /// writer and the reader; the reader waits for the first writer only.
    #[test]
    fn write_read_write_chains() {
        // Build with raw Writes/Slice mix: writer(key 9), reader(key 9),
        // writer(key 9). Use a read-only slice for the middle piece.
        let mut b = ProcBuilder::new(ProcId::new(0), "R", 1);
        let _v = b.read(T, Expr::param(0), 0);
        let read_proc = Arc::new(b.build().unwrap());
        let writer = |ts| Piece {
            txn: 0,
            ts,
            ops: PieceOps::Writes(Arc::new(vec![WriteRecord {
                table: T,
                key: 9,
                kind: WriteKind::Update,
                after: Some(std::sync::Arc::new(Row::from([Value::Int(1)]))),
                prev_ts: 0,
            }])),
        };
        let txns = vec![
            TxnCtx {
                ts: 1,
                proc: None,
                params: Params::from(vec![]),
                vars: Arc::new(VarStore::new(0)),
            },
            TxnCtx {
                ts: 2,
                proc: Some(Arc::clone(&read_proc)),
                params: Params::from(vec![Value::Int(9)]),
                vars: Arc::new(VarStore::new(1)),
            },
        ];
        let set = PieceSet {
            block: BlockId::new(0),
            pieces: vec![
                writer(1),
                Piece {
                    txn: 1,
                    ts: 2,
                    ops: PieceOps::Slice(Arc::new(vec![0])),
                },
                writer(3),
            ],
        };
        let dag = build_piece_dag(&set, &txns);
        assert_eq!(dag.initial_ready, vec![0]);
        assert_eq!(dag.dependents[0], vec![1, 2]);
        assert_eq!(dag.dependents[1], vec![2]);
        assert_eq!(dag.indeg[2].load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn read_read_does_not_conflict() {
        let mut b = ProcBuilder::new(ProcId::new(0), "R", 1);
        let _v = b.read(T, Expr::param(0), 0);
        let read_proc = Arc::new(b.build().unwrap());
        let txns: Vec<TxnCtx> = (0..2)
            .map(|i| TxnCtx {
                ts: i,
                proc: Some(Arc::clone(&read_proc)),
                params: Params::from(vec![Value::Int(4)]),
                vars: Arc::new(VarStore::new(1)),
            })
            .collect();
        let set = PieceSet {
            block: BlockId::new(0),
            pieces: vec![
                Piece {
                    txn: 0,
                    ts: 0,
                    ops: PieceOps::Slice(Arc::new(vec![0])),
                },
                Piece {
                    txn: 1,
                    ts: 1,
                    ops: PieceOps::Slice(Arc::new(vec![0])),
                },
            ],
        };
        let dag = build_piece_dag(&set, &txns);
        assert_eq!(dag.initial_ready, vec![0, 1], "read-read parallel");
    }

    /// Keys flowing from upstream pieces (bank's `dst`): once the var store
    /// holds the value, the DAG uses the resolved key.
    #[test]
    fn upstream_vars_feed_key_resolution() {
        let mut b = ProcBuilder::new(ProcId::new(0), "X", 1);
        let dst = b.read(TableId::new(1), Expr::param(0), 0);
        b.write(T, Expr::var(dst), 0, Expr::int(1));
        let proc = Arc::new(b.build().unwrap());
        let mk = |key_val: i64| -> TxnCtx {
            let ctx = TxnCtx {
                ts: 1,
                proc: Some(Arc::clone(&proc)),
                params: Params::from(vec![Value::Int(0)]),
                vars: Arc::new(VarStore::new(1)),
            };
            ctx.vars.set(dst, Value::Int(key_val)); // upstream piece ran
            ctx
        };
        let txns = vec![mk(7), mk(8), mk(7)];
        let set = PieceSet {
            block: BlockId::new(0),
            pieces: (0..3)
                .map(|i| Piece {
                    txn: i,
                    ts: i as u64,
                    ops: PieceOps::Slice(Arc::new(vec![1])),
                })
                .collect(),
        };
        let dag = build_piece_dag(&set, &txns);
        assert_eq!(dag.initial_ready, vec![0, 1]);
        assert_eq!(dag.dependents[0], vec![2], "same dst chains");
    }

    /// Unresolvable access sets serialize through the opaque barrier.
    #[test]
    fn opaque_pieces_serialize() {
        let mut b = ProcBuilder::new(ProcId::new(0), "X", 1);
        let dst = b.read(TableId::new(1), Expr::param(0), 0);
        b.write(T, Expr::var(dst), 0, Expr::int(1));
        let proc = Arc::new(b.build().unwrap());
        // No vars set: the key is unresolvable → opaque.
        let txns: Vec<TxnCtx> = (0..3)
            .map(|_| TxnCtx {
                ts: 1,
                proc: Some(Arc::clone(&proc)),
                params: Params::from(vec![Value::Int(0)]),
                vars: Arc::new(VarStore::new(1)),
            })
            .collect();
        let set = PieceSet {
            block: BlockId::new(0),
            pieces: (0..3)
                .map(|i| Piece {
                    txn: i,
                    ts: i as u64,
                    ops: PieceOps::Slice(Arc::new(vec![1])),
                })
                .collect(),
        };
        let dag = build_piece_dag(&set, &txns);
        assert_eq!(dag.initial_ready, vec![0], "fully serialized");
        assert_eq!(dag.dependents[0], vec![1]);
        assert_eq!(dag.dependents[1], vec![2]);
    }
}
