//! Checkpoint recovery (§2.3, Fig. 13).
//!
//! Two phases, both parallel over checkpoint parts:
//!
//! 1. **reload** — read every part file off the devices (bounded by device
//!    read bandwidth; Fig. 13a);
//! 2. **restore** — decode tuples and install them. Index-building schemes
//!    (LLR/LLR-P/CLR/CLR-P) insert into the B-tree tables here, because
//!    their log recovery needs index lookups; PLR only fills the raw heap
//!    and defers index construction to the end of log recovery — which is
//!    why its checkpoint phase is the fastest in Fig. 13b.

use crate::recovery::raw::RawStore;
use bytes::Bytes;
use pacman_common::{Result, TableId, Timestamp};
use pacman_engine::{Database, TupleChain};
use pacman_storage::StorageSet;
use pacman_wal::checkpoint::{decode_part, part_name, CheckpointManifest};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where restored tuples go.
pub enum CheckpointTarget<'a> {
    /// Insert into the database tables (index built online).
    Tables(&'a Database),
    /// Fill the raw heap only (PLR).
    Raw(&'a RawStore),
}

/// Timing result of checkpoint recovery.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointRecovery {
    /// Wall time of the pure file-reload phase (Fig. 13a).
    pub reload: Duration,
    /// Wall time of reload + restore (Fig. 13b).
    pub total: Duration,
    /// Snapshot timestamp of the recovered checkpoint (0 = none found).
    pub ckpt_ts: Timestamp,
    /// Tuples restored.
    pub tuples: u64,
}

/// Restore the checkpoint described by `manifest` with `threads` workers.
pub fn recover_checkpoint(
    storage: &StorageSet,
    manifest: &CheckpointManifest,
    threads: usize,
    target: CheckpointTarget<'_>,
) -> Result<CheckpointRecovery> {
    let threads = threads.max(1);
    let t0 = Instant::now();

    // Phase 1: reload all parts (parallel, device-bandwidth bound).
    let parts = &manifest.parts;
    let loaded: Vec<parking_lot::Mutex<Option<Bytes>>> = parts
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);
    let err = parking_lot::Mutex::new(None::<pacman_common::Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= parts.len() {
                    return;
                }
                let (table, shard, disk) = parts[i];
                let name = part_name(manifest.ts, table, shard as usize);
                match storage.disk(disk as usize).read(&name) {
                    Ok(bytes) => *loaded[i].lock() = Some(bytes),
                    Err(e) => {
                        let mut slot = err.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            });
        }
    })
    .expect("checkpoint reload scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }
    let reload = t0.elapsed();

    // Phase 2: decode + install.
    let tuples = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let err = parking_lot::Mutex::new(None::<pacman_common::Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= parts.len() {
                    return;
                }
                let bytes = loaded[i].lock().take().expect("loaded in phase 1");
                let (table, _, _) = parts[i];
                let decoded = match decode_part(&bytes) {
                    Ok(d) => d,
                    Err(e) => {
                        let mut slot = err.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                };
                tuples.fetch_add(decoded.len(), Ordering::Relaxed);
                let tid = TableId::new(table);
                match &target {
                    CheckpointTarget::Tables(db) => {
                        let t = db.table(tid).expect("catalog covers checkpoint");
                        for (key, row) in decoded {
                            t.put_chain(
                                key,
                                Arc::new(TupleChain::with_version(manifest.ts, Some(row))),
                            );
                        }
                    }
                    CheckpointTarget::Raw(raw) => {
                        for (key, row) in decoded {
                            raw.table(tid)
                                .get_or_create(key)
                                .install_lww(manifest.ts, Some(row));
                        }
                    }
                }
            });
        }
    })
    .expect("checkpoint restore scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }

    Ok(CheckpointRecovery {
        reload,
        total: t0.elapsed(),
        ckpt_ts: manifest.ts,
        tuples: tuples.load(Ordering::Relaxed) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Row, Value};
    use pacman_engine::Catalog;
    use pacman_wal::run_checkpoint;

    fn seeded() -> (Arc<Database>, StorageSet, CheckpointManifest) {
        let mut c = Catalog::new();
        c.add_table_sharded("a", 1, 2);
        let db = Arc::new(Database::new(c));
        for k in 0..200u64 {
            db.seed_row(TableId::new(0), k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        let storage = StorageSet::for_tests();
        run_checkpoint(&db, &storage, 2).unwrap();
        let manifest = pacman_wal::checkpoint::read_manifest(&storage)
            .unwrap()
            .unwrap();
        (db, storage, manifest)
    }

    #[test]
    fn tables_target_restores_equivalent_state() {
        let (db, storage, manifest) = seeded();
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        let r =
            recover_checkpoint(&storage, &manifest, 4, CheckpointTarget::Tables(&fresh)).unwrap();
        assert_eq!(r.tuples, 200);
        assert_eq!(fresh.fingerprint(), db.fingerprint());
        assert!(r.total >= r.reload);
    }

    #[test]
    fn raw_target_restores_without_indexes() {
        let (db, storage, manifest) = seeded();
        let raw = RawStore::new(1);
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        recover_checkpoint(&storage, &manifest, 2, CheckpointTarget::Raw(&raw)).unwrap();
        assert_eq!(raw.total(), 200);
        assert_eq!(fresh.total_tuples(), 0, "no index entries yet");
        raw.build_indexes(&fresh, 2);
        assert_eq!(fresh.fingerprint(), db.fingerprint());
    }

    #[test]
    fn missing_part_is_an_error() {
        let (db, storage, mut manifest) = seeded();
        manifest.parts.push((0, 999, 0));
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        let r = recover_checkpoint(&storage, &manifest, 2, CheckpointTarget::Tables(&fresh));
        assert!(r.is_err());
    }
}
