//! Checkpoint recovery (§2.3, Fig. 13), chain-aware since the incremental
//! checkpointing rework.
//!
//! The durable base image is a *manifest chain* (full checkpoint + delta
//! links, see `pacman_wal::checkpoint`); the [`ShardLoader`] resolves
//! every `(table, shard)` to its newest part along the chain and installs
//! parts with `threads` workers. Two consumption modes:
//!
//! * [`recover_checkpoint_chain`] — **eager**: load everything before
//!   returning (all offline schemes, and the inline stage of command-
//!   scheme online sessions, whose replay re-executes reads and therefore
//!   needs the whole base image resident);
//! * [`run_lazy_loader`] — **lazy**: stream shards in *during* an online
//!   session, publishing per-shard residency to the
//!   [`pacman_engine::RecoveryGate`]. Workers pull *wanted* shards (a
//!   blocked admission's footprint) first, then sweep the rest cheapest-
//!   first — smallest part next, mirroring the replay runtime's SJF
//!   drain. Installs use timestamped last-writer-wins, so a loader racing
//!   the tuple-level replay of the same shard converges to the same state
//!   regardless of order (part timestamps sort below every replayed
//!   record).

use crate::metrics::RecoveryMetrics;
use crate::recovery::raw::RawStore;
use pacman_common::{Result, TableId, Timestamp};
use pacman_engine::{Database, RecoveryGate, TupleChain};
use pacman_storage::StorageSet;
use pacman_wal::checkpoint::{decode_part, part_name, CheckpointChain, ResolvedPart};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where restored tuples go.
pub enum CheckpointTarget<'a> {
    /// Insert into the database tables (index built online).
    Tables(&'a Database),
    /// Fill the raw heap only (PLR).
    Raw(&'a RawStore),
}

/// Timing result of checkpoint recovery.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointRecovery {
    /// Wall time of the pure file-reload phase (Fig. 13a).
    pub reload: Duration,
    /// Wall time of reload + restore (Fig. 13b).
    pub total: Duration,
    /// Coverage timestamp of the recovered chain (0 = none found).
    pub ckpt_ts: Timestamp,
    /// Tuples restored.
    pub tuples: u64,
    /// Chain links the base image was resolved across (1 = full only).
    pub chain_len: usize,
}

/// One `(table, shard)` load unit resolved to its newest part.
#[derive(Clone, Debug)]
pub struct LoadUnit {
    /// The resolved part.
    pub part: ResolvedPart,
    /// Part size in bytes (SJF ordering; metadata lookup, no I/O cost).
    pub bytes: usize,
}

/// Resolves a manifest chain into per-shard load units.
pub struct ShardLoader {
    units: Vec<LoadUnit>,
    ckpt_ts: Timestamp,
    chain_len: usize,
}

impl ShardLoader {
    /// Resolve `chain` against `storage`. Units are sorted by ascending
    /// part size (cheapest first).
    pub fn new(storage: &StorageSet, chain: &CheckpointChain) -> ShardLoader {
        let mut units: Vec<LoadUnit> = chain
            .resolve_parts()
            .into_iter()
            .map(|part| {
                let name = part_name(part.ts, part.table, part.shard as usize);
                let bytes = storage.disk(part.disk as usize).len(&name).unwrap_or(0);
                LoadUnit { part, bytes }
            })
            .collect();
        units.sort_by_key(|u| (u.bytes, u.part.table, u.part.shard));
        ShardLoader {
            units,
            ckpt_ts: chain.ts(),
            chain_len: chain.len(),
        }
    }

    /// The resolved load units (ascending size).
    pub fn units(&self) -> &[LoadUnit] {
        &self.units
    }

    /// Coverage timestamp of the chain.
    pub fn ckpt_ts(&self) -> Timestamp {
        self.ckpt_ts
    }

    /// Load one unit through the table's timestamped LWW install path —
    /// safe against a concurrent tuple-level replay of the same keys
    /// (lazy online reload). Returns tuples installed.
    fn load_unit_lww(&self, storage: &StorageSet, u: &LoadUnit, db: &Database) -> Result<u64> {
        let p = &u.part;
        let name = part_name(p.ts, p.table, p.shard as usize);
        let bytes = storage.disk(p.disk as usize).read(&name)?;
        let decoded = decode_part(&bytes)?;
        let n = decoded.len() as u64;
        let t = db.table(TableId::new(p.table))?;
        for (key, row) in decoded {
            t.install_lww(key, p.ts, Some(Arc::new(row)));
        }
        Ok(n)
    }
}

/// Run `work(i)` over `0..n` unit indices with `threads` workers,
/// stopping at — and returning — the first error (later units are left
/// unclaimed). The shared scaffolding of the eager, lazy and resync
/// loaders.
fn parallel_units(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> Result<()> + Sync,
) -> Result<()> {
    let next = AtomicUsize::new(0);
    let err = parking_lot::Mutex::new(None::<pacman_common::Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let next = &next;
            let err = &err;
            let work = &work;
            scope.spawn(move |_| loop {
                if err.lock().is_some() {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                if let Err(e) = work(i) {
                    let mut slot = err.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    return;
                }
            });
        }
    })
    .expect("parallel unit scope");
    match err.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Validate every resolved part against the live catalog: a corrupt
/// manifest must surface as a clean error (the session then poisons its
/// gate), never as an out-of-bounds panic that leaves waiters hanging.
fn validate_units_against_catalog(units: &[LoadUnit], db: &Database, what: &str) -> Result<()> {
    for u in units {
        let p = &u.part;
        let valid = db
            .tables()
            .get(p.table as usize)
            .is_some_and(|t| (p.shard as usize) < t.num_shards());
        if !valid {
            return Err(pacman_common::Error::Corrupt(format!(
                "{what} part (table {}, shard {}) outside the catalog",
                p.table, p.shard
            )));
        }
    }
    Ok(())
}

/// Restore the whole chain eagerly with `threads` workers (offline
/// recovery and the inline stage of command-scheme online sessions).
pub fn recover_checkpoint_chain(
    storage: &StorageSet,
    chain: &CheckpointChain,
    threads: usize,
    target: CheckpointTarget<'_>,
) -> Result<CheckpointRecovery> {
    let threads = threads.max(1);
    let t0 = Instant::now();
    let loader = ShardLoader::new(storage, chain);

    // Phase 1: reload all parts (parallel, device-bandwidth bound).
    let units = loader.units();
    // A corrupt manifest naming a table outside the catalog must surface
    // as a clean error, matching the lazy path's validation.
    let num_tables = match &target {
        CheckpointTarget::Tables(db) => db.tables().len(),
        CheckpointTarget::Raw(raw) => raw.num_tables(),
    };
    for u in units {
        if u.part.table as usize >= num_tables {
            return Err(pacman_common::Error::Corrupt(format!(
                "checkpoint part names table {} outside the catalog",
                u.part.table
            )));
        }
    }
    let loaded: Vec<parking_lot::Mutex<Option<bytes::Bytes>>> = units
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    parallel_units(units.len(), threads, |i| {
        let p = &units[i].part;
        let name = part_name(p.ts, p.table, p.shard as usize);
        *loaded[i].lock() = Some(storage.disk(p.disk as usize).read(&name)?);
        Ok(())
    })?;
    let reload = t0.elapsed();

    // Phase 2: decode + install.
    let tuples = AtomicUsize::new(0);
    parallel_units(units.len(), threads, |i| {
        let bytes = loaded[i].lock().take().expect("loaded in phase 1");
        let p = &units[i].part;
        let decoded = decode_part(&bytes)?;
        tuples.fetch_add(decoded.len(), Ordering::Relaxed);
        let tid = TableId::new(p.table);
        match &target {
            CheckpointTarget::Tables(db) => {
                let t = db.table(tid).expect("catalog covers checkpoint");
                for (key, row) in decoded {
                    t.put_chain(
                        key,
                        Arc::new(TupleChain::with_version(p.ts, Some(Arc::new(row)))),
                    );
                }
            }
            CheckpointTarget::Raw(raw) => {
                for (key, row) in decoded {
                    raw.table(tid)
                        .get_or_create(key)
                        .install_lww(p.ts, Some(Arc::new(row)));
                }
            }
        }
        Ok(())
    })?;

    Ok(CheckpointRecovery {
        reload,
        total: t0.elapsed(),
        ckpt_ts: loader.ckpt_ts(),
        tuples: tuples.load(Ordering::Relaxed) as u64,
        chain_len: loader.chain_len,
    })
}

/// Re-synchronize an *already-populated* database onto a newer manifest
/// chain: the standby's re-bootstrap path after its ship cursor was
/// broken by the bounded-lag retention policy. The log records between
/// the standby's applied frontier and the chain's coverage are gone
/// (reclaimed on the primary), so the chain is installed as
/// **replace-shard** state:
///
/// * every part tuple installs timestamped-LWW at its link's snapshot
///   timestamp (all of the standby's existing versions sort below it —
///   a shard resolved to link `L` had no primary writes in `(L, tip]`,
///   and everything the standby ever applied was sealed below the
///   coverage that broke the cursor);
/// * keys live in the standby but absent from the shard's part are
///   **tombstoned** at the part timestamp (they were deleted on the
///   primary inside the reclaimed gap);
/// * shards with no part in the chain were empty at the tip — their
///   surviving keys are tombstoned at the tip timestamp.
///
/// The caller must have quiesced the apply engines first: command
/// re-execution racing a resync would read half-replaced state.
pub fn resync_checkpoint_chain(
    storage: &StorageSet,
    chain: &CheckpointChain,
    db: &Arc<Database>,
    threads: usize,
) -> Result<CheckpointRecovery> {
    let t0 = Instant::now();
    let loader = ShardLoader::new(storage, chain);
    let units = loader.units();
    validate_units_against_catalog(units, db, "resync")?;
    let covered: std::collections::HashSet<(u32, u32)> =
        units.iter().map(|u| (u.part.table, u.part.shard)).collect();

    let tuples = std::sync::atomic::AtomicU64::new(0);
    parallel_units(units.len(), threads, |i| {
        let p = &units[i].part;
        let name = part_name(p.ts, p.table, p.shard as usize);
        let decoded = decode_part(&storage.disk(p.disk as usize).read(&name)?)?;
        let t = db.table(TableId::new(p.table)).expect("validated above");
        let mut part_keys = std::collections::HashSet::with_capacity(decoded.len());
        tuples.fetch_add(decoded.len() as u64, Ordering::Relaxed);
        for (key, row) in decoded {
            part_keys.insert(key);
            t.install_lww(key, p.ts, Some(Arc::new(row)));
        }
        let mut stale = Vec::new();
        t.for_each_visible_at_shard(p.shard as usize, u64::MAX, |key, _| {
            if !part_keys.contains(&key) {
                stale.push(key);
            }
        });
        for key in stale {
            t.install_lww(key, p.ts, None);
        }
        Ok(())
    })?;

    // Shards the chain does not cover were empty at the tip: clear any
    // survivors the reclaimed gap deleted on the primary.
    let tip = chain.ts();
    for t in db.tables() {
        for shard in 0..t.num_shards() {
            if covered.contains(&(t.meta().id.0, shard as u32)) {
                continue;
            }
            let mut stale = Vec::new();
            t.for_each_visible_at_shard(shard, u64::MAX, |key, _| stale.push(key));
            for key in stale {
                t.install_lww(key, tip, None);
            }
        }
    }

    let elapsed = t0.elapsed();
    Ok(CheckpointRecovery {
        reload: elapsed,
        total: elapsed,
        ckpt_ts: tip,
        tuples: tuples.load(Ordering::Relaxed),
        chain_len: loader.chain_len,
    })
}

/// Stream the chain in lazily with `threads` workers, publishing per-
/// shard residency to `gate` as each `(table, shard)` lands. `partition`
/// maps a resolved part to its gate shard index. Shards without any part
/// in the chain are published resident immediately (they were empty at
/// the checkpoint). Workers prefer *wanted* shards (smallest first), then
/// sweep the remainder cheapest-first.
pub fn run_lazy_loader(
    storage: &StorageSet,
    chain: &CheckpointChain,
    db: &Arc<Database>,
    gate: &Arc<RecoveryGate>,
    partition: impl Fn(&ResolvedPart) -> usize + Sync,
    threads: usize,
    metrics: &RecoveryMetrics,
) -> Result<CheckpointRecovery> {
    let t0 = Instant::now();
    let loader = ShardLoader::new(storage, chain);
    let units = loader.units();
    // Validate the manifest against the catalog *before* mapping into the
    // gate's residency plane.
    validate_units_against_catalog(units, db, "checkpoint")?;
    let parts: Vec<usize> = units.iter().map(|u| partition(&u.part)).collect();
    if let Some(&bad) = parts.iter().find(|&&s| s >= gate.num_shards()) {
        return Err(pacman_common::Error::Corrupt(format!(
            "checkpoint shard maps to partition {bad} outside the gate's {} shards",
            gate.num_shards()
        )));
    }

    // Everything the chain does not cover is resident by definition.
    {
        let covered: std::collections::HashSet<usize> = parts.iter().copied().collect();
        for s in 0..gate.num_shards() {
            if !covered.contains(&s) {
                gate.publish_resident(s);
            }
        }
    }

    // Pending unit indices, ascending size (the loader sorted them).
    let pending = parking_lot::Mutex::new((0..units.len()).collect::<Vec<usize>>());
    let tuples = std::sync::atomic::AtomicU64::new(0);
    let err = parking_lot::Mutex::new(None::<pacman_common::Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let pending = &pending;
            let tuples = &tuples;
            let err = &err;
            let parts = &parts;
            let loader = &loader;
            scope.spawn(move |_| loop {
                if err.lock().is_some() {
                    return;
                }
                // Claim: first wanted shard (they are size-ordered, so the
                // first hit is also the cheapest wanted one), else the
                // cheapest remaining.
                let claimed = {
                    let mut q = pending.lock();
                    if q.is_empty() {
                        return;
                    }
                    let pos = q
                        .iter()
                        .position(|&i| gate.is_shard_wanted(parts[i]))
                        .unwrap_or(0);
                    let wanted = gate.is_shard_wanted(parts[q[pos]]);
                    (q.remove(pos), wanted)
                };
                let (ui, wanted) = claimed;
                let tr = Instant::now();
                match loader.load_unit_lww(storage, &units[ui], db) {
                    Ok(n) => {
                        tuples.fetch_add(n, Ordering::Relaxed);
                        metrics.add_load(tr.elapsed());
                        metrics.count_shard_load(wanted);
                        gate.publish_resident(parts[ui]);
                    }
                    Err(e) => {
                        let mut slot = err.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    })
    .expect("lazy checkpoint loader scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }

    // Loading and installing interleave for the whole run, so reload and
    // total coincide (unlike the eager path's two distinct phases) —
    // keeping the `total >= reload` invariant reports rely on.
    let elapsed = t0.elapsed();
    Ok(CheckpointRecovery {
        reload: elapsed,
        total: elapsed,
        ckpt_ts: loader.ckpt_ts(),
        tuples: tuples.load(Ordering::Relaxed),
        chain_len: loader.chain_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Row, Value};
    use pacman_engine::Catalog;
    use pacman_wal::checkpoint::read_chain;
    use pacman_wal::{run_checkpoint, run_checkpoint_incremental};

    fn seeded() -> (Arc<Database>, StorageSet, CheckpointChain) {
        let mut c = Catalog::new();
        c.add_table_sharded("a", 1, 2);
        let db = Arc::new(Database::new(c));
        for k in 0..200u64 {
            db.seed_row(TableId::new(0), k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        let storage = StorageSet::for_tests();
        run_checkpoint(&db, &storage, 2).unwrap();
        let chain = read_chain(&storage).unwrap().unwrap();
        (db, storage, chain)
    }

    #[test]
    fn tables_target_restores_equivalent_state() {
        let (db, storage, chain) = seeded();
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        let r = recover_checkpoint_chain(&storage, &chain, 4, CheckpointTarget::Tables(&fresh))
            .unwrap();
        assert_eq!(r.tuples, 200);
        assert_eq!(r.chain_len, 1);
        assert_eq!(fresh.fingerprint(), db.fingerprint());
        assert!(r.total >= r.reload);
    }

    #[test]
    fn raw_target_restores_without_indexes() {
        let (db, storage, chain) = seeded();
        let raw = RawStore::new(1);
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        recover_checkpoint_chain(&storage, &chain, 2, CheckpointTarget::Raw(&raw)).unwrap();
        assert_eq!(raw.total(), 200);
        assert_eq!(fresh.total_tuples(), 0, "no index entries yet");
        raw.build_indexes(&fresh, 2);
        assert_eq!(fresh.fingerprint(), db.fingerprint());
    }

    #[test]
    fn missing_part_is_an_error() {
        let (db, storage, mut chain) = seeded();
        chain.manifests[0].parts.push((0, 999, 0));
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        let r = recover_checkpoint_chain(&storage, &chain, 2, CheckpointTarget::Tables(&fresh));
        assert!(r.is_err());
    }

    #[test]
    fn chained_deltas_restore_equivalent_state() {
        let mut c = Catalog::new();
        c.add_table_sharded("a", 1, 3);
        let db = Arc::new(Database::new(c));
        for k in 0..200u64 {
            db.seed_row(TableId::new(0), k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        let storage = StorageSet::for_tests();
        run_checkpoint_incremental(&db, &storage, 2, 8).unwrap();
        // Two delta rounds touching disjoint keys, plus a delete.
        for (round, key) in [(1i64, 3u64), (2, 77)] {
            let mut t = db.begin();
            let r = t.read(TableId::new(0), key).unwrap();
            t.write(TableId::new(0), key, r.with_col(0, Value::Int(-round)))
                .unwrap();
            t.commit().unwrap();
            run_checkpoint_incremental(&db, &storage, 2, 8).unwrap();
        }
        let mut t = db.begin();
        t.delete(TableId::new(0), 42).unwrap();
        t.commit().unwrap();
        run_checkpoint_incremental(&db, &storage, 2, 8).unwrap();

        let chain = read_chain(&storage).unwrap().unwrap();
        assert_eq!(chain.len(), 4);
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        let r = recover_checkpoint_chain(&storage, &chain, 4, CheckpointTarget::Tables(&fresh))
            .unwrap();
        assert_eq!(r.chain_len, 4);
        assert_eq!(fresh.fingerprint(), db.fingerprint());
        assert!(
            fresh.table(TableId::new(0)).unwrap().get(42).is_none(),
            "deleted key must not resurrect from the base"
        );
    }

    #[test]
    fn resync_replaces_shards_including_gap_deletes() {
        use pacman_common::TableId;
        // Primary: seed, let a "standby" copy apply a prefix, then mutate
        // past it (update + delete + insert) and checkpoint — the gap the
        // standby missed. Resync must converge the standby bit-exactly.
        let mut c = Catalog::new();
        c.add_table_sharded("a", 1, 2);
        let primary = Arc::new(Database::new(c.clone()));
        for k in 0..50u64 {
            primary
                .seed_row(TableId::new(0), k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        // The standby applied everything up to here.
        let standby = Arc::new(Database::new(c));
        for k in 0..50u64 {
            standby
                .seed_row(TableId::new(0), k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        // The gap (never shipped): update 7, delete 13, insert 99.
        let mut t = primary.begin();
        let r = t.read(TableId::new(0), 7).unwrap();
        t.write(TableId::new(0), 7, r.with_col(0, Value::Int(-7)))
            .unwrap();
        t.delete(TableId::new(0), 13).unwrap();
        t.insert(TableId::new(0), 99, Row::from([Value::Int(99)]))
            .unwrap();
        t.commit().unwrap();
        let storage = StorageSet::for_tests();
        run_checkpoint(&primary, &storage, 2).unwrap();
        let chain = read_chain(&storage).unwrap().unwrap();

        let r = resync_checkpoint_chain(&storage, &chain, &standby, 2).unwrap();
        assert_eq!(r.ckpt_ts, chain.ts());
        assert_eq!(standby.fingerprint(), primary.fingerprint());
        assert!(
            standby.table(TableId::new(0)).unwrap().get(13).is_some(),
            "gap-deleted key keeps a tombstoned chain"
        );
    }

    #[test]
    fn resync_clears_shards_emptied_in_the_gap() {
        use pacman_common::TableId;
        // Table b is emptied on the primary before the checkpoint: the
        // full chain carries no part for it, and resync must still clear
        // the standby's survivors.
        let mut c = Catalog::new();
        c.add_table("a", 1);
        c.add_table("b", 1);
        let primary = Arc::new(Database::new(c.clone()));
        primary
            .seed_row(TableId::new(0), 1, Row::from([Value::Int(1)]))
            .unwrap();
        let standby = Arc::new(Database::new(c));
        standby
            .seed_row(TableId::new(0), 1, Row::from([Value::Int(1)]))
            .unwrap();
        standby
            .seed_row(TableId::new(1), 5, Row::from([Value::Int(5)]))
            .unwrap();
        // (the primary deleted b[5] in the gap; here it simply never has it)
        let storage = StorageSet::for_tests();
        run_checkpoint(&primary, &storage, 1).unwrap();
        let chain = read_chain(&storage).unwrap().unwrap();
        resync_checkpoint_chain(&storage, &chain, &standby, 1).unwrap();
        assert_eq!(standby.fingerprint(), primary.fingerprint());
    }

    #[test]
    fn lazy_loader_publishes_residency_and_matches_eager() {
        let (db, storage, chain) = seeded();
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        let shards = fresh.table(TableId::new(0)).unwrap().num_shards();
        let gate = RecoveryGate::with_residency(shards, shards);
        let metrics = RecoveryMetrics::new();
        let r = run_lazy_loader(
            &storage,
            &chain,
            &fresh,
            &gate,
            |p| p.shard as usize,
            2,
            &metrics,
        )
        .unwrap();
        assert_eq!(r.tuples, 200);
        assert!(gate.all_resident());
        assert_eq!(fresh.fingerprint(), db.fingerprint());
        assert_eq!(
            metrics.ondemand_shard_loads() + metrics.background_shard_loads(),
            chain.resolve_parts().len() as u64
        );
    }

    #[test]
    fn lazy_loader_lww_never_clobbers_newer_replayed_state() {
        let (db, storage, chain) = seeded();
        let fresh = Arc::new(Database::new(db.catalog().clone()));
        // Simulate a replayed record newer than the checkpoint landing
        // *before* the loader touches its shard.
        let newer_ts = chain.ts() + 100;
        fresh.table(TableId::new(0)).unwrap().install_lww(
            5,
            newer_ts,
            Some(std::sync::Arc::new(Row::from([Value::Int(-555)]))),
        );
        let shards = fresh.table(TableId::new(0)).unwrap().num_shards();
        let gate = RecoveryGate::with_residency(shards, shards);
        let metrics = RecoveryMetrics::new();
        run_lazy_loader(
            &storage,
            &chain,
            &fresh,
            &gate,
            |p| p.shard as usize,
            2,
            &metrics,
        )
        .unwrap();
        let chain5 = fresh.table(TableId::new(0)).unwrap().get(5).unwrap();
        assert_eq!(
            chain5.newest().1.unwrap().col(0),
            &Value::Int(-555),
            "checkpoint install must lose to the newer replayed version"
        );
    }
}
