//! CLR-P: PACMAN — parallel command log recovery (§4, §6.2).
//!
//! A loader thread streams batches off the devices, merges them into
//! commitment order, instantiates execution schedules from the global
//! dependency graph and feeds them to the block worker groups of the
//! [`crate::runtime`]. The workload distribution is estimated from the
//! first batch at reload time (§4.4); replay runs in one of the three
//! modes of Fig. 19 (pure-static / synchronous / pipelined).

use crate::metrics::RecoveryMetrics;
use crate::recovery::plr::LogRecovery;
use crate::recovery::{read_merged_batch, LogInventory};
use crate::runtime::{run_replay_gated, ReplayMode};
use crate::schedule::ExecutionSchedule;
use crate::static_analysis::GlobalGraph;
use pacman_common::{Error, Result, Timestamp};
use pacman_engine::{Database, RecoveryGate};
use pacman_sproc::ProcRegistry;
use pacman_storage::StorageSet;
use pacman_wal::{LogBatch, LogPayload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Count one reloaded batch's format mix: (command records, tuple-level
/// records). Under CL the second component counts ad-hoc records; under
/// ALR it additionally counts the cost model's logical choices.
fn mix_of(batch: &LogBatch) -> (u64, u64) {
    let mut commands = 0;
    let mut logical = 0;
    for r in &batch.records {
        match &r.payload {
            LogPayload::Command { .. } => commands += 1,
            LogPayload::Writes { .. } | LogPayload::TaggedWrites { .. } => logical += 1,
        }
    }
    (commands, logical)
}

/// CLR-P (PACMAN) log recovery.
#[allow(clippy::too_many_arguments)]
pub fn recover_log(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    registry: &ProcRegistry,
    threads: usize,
    mode: ReplayMode,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &Arc<RecoveryMetrics>,
) -> Result<LogRecovery> {
    recover_log_online(
        storage, inventory, db, gdg, registry, threads, mode, pepoch, after_ts, metrics, None,
    )
}

/// [`recover_log`] publishing per-block batch watermarks to an
/// online-recovery gate and prioritizing blocks with waiting admissions.
#[allow(clippy::too_many_arguments)]
pub fn recover_log_online(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    registry: &ProcRegistry,
    threads: usize,
    mode: ReplayMode,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &Arc<RecoveryMetrics>,
    gate: Option<Arc<RecoveryGate>>,
) -> Result<LogRecovery> {
    let t0 = Instant::now();
    let batches = inventory.batches();
    if batches.is_empty() {
        return Ok(LogRecovery::default());
    }

    // Load the first batch synchronously: it provides the workload
    // distribution estimate for core assignment (§4.4).
    let tload = Instant::now();
    let first_batch = read_merged_batch(storage, inventory, batches[0], pepoch, after_ts)?;
    let (c0, l0) = mix_of(&first_batch);
    let first = ExecutionSchedule::build(gdg, registry, &first_batch)?;
    metrics.add_load(tload.elapsed());
    let estimate = {
        let counts = first.piece_counts();
        // An all-empty first batch still needs a sane assignment.
        if counts.iter().sum::<usize>() == 0 {
            vec![1; counts.len()]
        } else {
            counts
        }
    };

    let max_ts = Arc::new(AtomicU64::new(
        first_batch.records.last().map(|r| r.ts).unwrap_or(0),
    ));
    let txn_count = Arc::new(AtomicU64::new(first_batch.records.len() as u64));
    let commands = Arc::new(AtomicU64::new(c0));
    let logicals = Arc::new(AtomicU64::new(l0));
    let reload_ns = Arc::new(AtomicU64::new(0));

    let (tx, rx) = crossbeam::channel::bounded::<ExecutionSchedule>(4);
    let result: Result<()> = crossbeam::thread::scope(|scope| {
        // Loader: stream the remaining batches in order.
        let loader_err: Arc<parking_lot::Mutex<Option<Error>>> =
            Arc::new(parking_lot::Mutex::new(None));
        {
            let loader_err = Arc::clone(&loader_err);
            let max_ts = Arc::clone(&max_ts);
            let txn_count = Arc::clone(&txn_count);
            let commands = Arc::clone(&commands);
            let logicals = Arc::clone(&logicals);
            let reload_ns = Arc::clone(&reload_ns);
            let metrics = Arc::clone(metrics);
            // Scoped thread: borrow the batch list, no clone.
            let batches = &batches;
            scope.spawn(move |_| {
                let _ = tx.send(first);
                for &b in &batches[1..] {
                    let t0 = Instant::now();
                    let merged = match read_merged_batch(storage, inventory, b, pepoch, after_ts) {
                        Ok(m) => m,
                        Err(e) => {
                            *loader_err.lock() = Some(e);
                            return; // dropping tx ends the replay
                        }
                    };
                    if let Some(last) = merged.records.last() {
                        max_ts.fetch_max(last.ts, Ordering::Relaxed);
                    }
                    txn_count.fetch_add(merged.records.len() as u64, Ordering::Relaxed);
                    let (c, l) = mix_of(&merged);
                    commands.fetch_add(c, Ordering::Relaxed);
                    logicals.fetch_add(l, Ordering::Relaxed);
                    let schedule = match ExecutionSchedule::build(gdg, registry, &merged) {
                        Ok(s) => s,
                        Err(e) => {
                            *loader_err.lock() = Some(e);
                            return;
                        }
                    };
                    let dt = t0.elapsed();
                    reload_ns.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                    metrics.add_load(dt);
                    if tx.send(schedule).is_err() {
                        return; // replay aborted
                    }
                }
            });
        }
        run_replay_gated(db, gdg, mode, threads, &estimate, metrics, rx, gate)?;
        if let Some(e) = loader_err.lock().take() {
            return Err(e);
        }
        Ok(())
    })
    .expect("clr-p scope");
    result?;

    Ok(LogRecovery {
        reload: std::time::Duration::from_nanos(reload_ns.load(Ordering::Relaxed)),
        total: t0.elapsed(),
        max_ts: max_ts.load(Ordering::Relaxed),
        txns: txn_count.load(Ordering::Relaxed),
        replayed_commands: commands.load(Ordering::Relaxed),
        applied_writes: logicals.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::clock::epoch_floor;
    use pacman_common::{Encoder, ProcId, Row, TableId, Value};
    use pacman_engine::Catalog;
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_wal::{LogPayload, TxnLogRecord};

    const FAMILY: TableId = TableId::new(0);
    const CURRENT: TableId = TableId::new(1);
    const SAVING: TableId = TableId::new(2);

    fn registry() -> ProcRegistry {
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "Transfer", 2);
        let dst = b.read(FAMILY, Expr::param(0), 0);
        b.guarded(Expr::not_null(Expr::var(dst)), |b| {
            let src_val = b.read(CURRENT, Expr::param(0), 0);
            b.write(
                CURRENT,
                Expr::param(0),
                0,
                Expr::sub(Expr::var(src_val), Expr::param(1)),
            );
            let dst_val = b.read(CURRENT, Expr::var(dst), 0);
            b.write(
                CURRENT,
                Expr::var(dst),
                0,
                Expr::add(Expr::var(dst_val), Expr::param(1)),
            );
            let bonus = b.read(SAVING, Expr::param(0), 0);
            b.write(
                SAVING,
                Expr::param(0),
                0,
                Expr::add(Expr::var(bonus), Expr::int(1)),
            );
        });
        reg.register(b.build().unwrap()).unwrap();
        reg
    }

    fn bank_db() -> Arc<Database> {
        let mut c = Catalog::new();
        c.add_table("family", 1);
        c.add_table("current", 1);
        c.add_table("saving", 1);
        let db = Arc::new(Database::new(c));
        for k in 0..10u64 {
            let spouse = if k % 2 == 0 { (k + 1) as i64 } else { -1 };
            let spouse_val = if spouse >= 0 {
                Value::Int(spouse)
            } else {
                Value::str("NULL")
            };
            db.seed_row(FAMILY, k, Row::from([spouse_val])).unwrap();
            db.seed_row(CURRENT, k, Row::from([Value::Int(1000)]))
                .unwrap();
            db.seed_row(SAVING, k, Row::from([Value::Int(0)])).unwrap();
        }
        db
    }

    fn write_logs(storage: &StorageSet, n: u64, per_batch: u64) {
        let mut buf = Vec::new();
        let mut batch = 0;
        for i in 0..n {
            let src = (i * 2) % 10; // even accounts have spouses
            TxnLogRecord {
                ts: epoch_floor(1 + i / 4) | (i + 1),
                payload: LogPayload::Command {
                    proc: ProcId::new(0),
                    params: vec![Value::Int(src as i64), Value::Int(1)].into(),
                },
            }
            .encode(&mut buf);
            if (i + 1) % per_batch == 0 {
                storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
                buf.clear();
                batch += 1;
            }
        }
        if !buf.is_empty() {
            storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
        }
    }

    fn run(mode: ReplayMode, threads: usize) -> (Arc<Database>, LogRecovery) {
        let reg = registry();
        let gdg = Arc::new(GlobalGraph::analyze(reg.all()).unwrap());
        let storage = StorageSet::for_tests();
        write_logs(&storage, 40, 8);
        let db = bank_db();
        let inv = LogInventory::scan(&storage);
        let m = Arc::new(RecoveryMetrics::new());
        let r = recover_log(
            &storage,
            &inv,
            &db,
            &gdg,
            &reg,
            threads,
            mode,
            u64::MAX,
            0,
            &m,
        )
        .unwrap();
        (db, r)
    }

    #[test]
    fn all_modes_recover_identical_state() {
        let (db_ps, r_ps) = run(ReplayMode::PureStatic, 4);
        let (db_sync, r_sync) = run(ReplayMode::Synchronous, 4);
        let (db_pipe, r_pipe) = run(ReplayMode::Pipelined, 4);
        assert_eq!(r_ps.txns, 40);
        assert_eq!(r_sync.txns, 40);
        assert_eq!(r_pipe.txns, 40);
        let f = db_ps.fingerprint();
        assert_eq!(f, db_sync.fingerprint());
        assert_eq!(f, db_pipe.fingerprint());
    }

    #[test]
    fn recovered_values_are_exact() {
        let (db, _) = run(ReplayMode::Pipelined, 8);
        // 40 transfers of 1, sources cycle over even accounts 0,2,4,6,8
        // (8 times each); each even account loses 8, its spouse gains 8,
        // and its saving gains 8 bonuses.
        let mut t = db.begin();
        assert_eq!(t.read(CURRENT, 0).unwrap().col(0), &Value::Int(992));
        assert_eq!(t.read(CURRENT, 1).unwrap().col(0), &Value::Int(1008));
        assert_eq!(t.read(SAVING, 0).unwrap().col(0), &Value::Int(8));
        assert_eq!(t.read(SAVING, 1).unwrap().col(0), &Value::Int(0));
    }

    #[test]
    fn single_thread_still_works() {
        let (db, r) = run(ReplayMode::Pipelined, 1);
        assert_eq!(r.txns, 40);
        let mut t = db.begin();
        assert_eq!(t.read(CURRENT, 0).unwrap().col(0), &Value::Int(992));
    }

    #[test]
    fn empty_log_is_trivial() {
        let reg = registry();
        let gdg = Arc::new(GlobalGraph::analyze(reg.all()).unwrap());
        let storage = StorageSet::for_tests();
        let db = bank_db();
        let inv = LogInventory::scan(&storage);
        let m = Arc::new(RecoveryMetrics::new());
        let r = recover_log(
            &storage,
            &inv,
            &db,
            &gdg,
            &reg,
            4,
            ReplayMode::Pipelined,
            u64::MAX,
            0,
            &m,
        )
        .unwrap();
        assert_eq!(r.txns, 0);
    }
}
