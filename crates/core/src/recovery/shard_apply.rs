//! The shared per-(table, shard) apply worker used by LLR-P online
//! recovery and the LLR-P hot standby.
//!
//! Both consumers have the same shape: a producer appends `(ts, write)`
//! pairs to per-shard queues and publishes a *frontier* (the highest
//! batch fully enqueued); a pool of workers drains whole shard queues —
//! shards with blocked admissions first — installs latch-free with
//! timestamped last-writer-wins, and publishes the shard's applied-batch
//! watermark to the [`RecoveryGate`]. A shard's stream is applied by one
//! worker at a time (the queue lock is held across the install), which
//! preserves per-key commitment order. The only difference between the
//! consumers is where the frontier and the "no more batches" signal come
//! from — recovery's loader counts a fixed batch list, the standby's
//! receiver counts shipped seals — so both arrive as closures.

use crate::metrics::RecoveryMetrics;
use pacman_common::{Error, Timestamp};
use pacman_engine::{Database, RecoveryGate, WriteRecord};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One shard's apply lane: the pending write queue plus the applied-batch
/// watermark.
#[derive(Default)]
pub(crate) struct ShardLane {
    /// Writes enqueued but not yet installed, in producer order.
    pub queue: Mutex<Vec<(Timestamp, WriteRecord)>>,
    /// Highest frontier this shard has fully applied.
    pub applied: AtomicU64,
}

/// Build `n` empty lanes.
pub(crate) fn lanes(n: usize) -> Vec<ShardLane> {
    (0..n).map(|_| ShardLane::default()).collect()
}

/// One worker of the shard-apply pool. Runs until `done()` reports no
/// further batches will arrive *and* every lane has caught up with the
/// frontier, or until `err` is latched (by this worker or a peer).
///
/// `frontier()` must be monotone, and everything enqueued to a lane must
/// happen before the frontier covering it is published.
#[allow(clippy::too_many_arguments)] // the protocol's full shared state
pub(crate) fn run_shard_worker(
    lanes: &[ShardLane],
    db: &Database,
    gate: &RecoveryGate,
    metrics: &RecoveryMetrics,
    err: &Mutex<Option<Error>>,
    frontier: impl Fn() -> u64,
    done: impl Fn() -> bool,
    worker: usize,
) {
    let n = lanes.len();
    let mut rot = worker;
    loop {
        if err.lock().is_some() {
            return;
        }
        let frontier_now = frontier();
        let done_now = done();
        let mut progressed = false;
        let prioritize = gate.any_wanted();
        let passes = if prioritize { 2 } else { 1 };
        'scan: for pass in 0..passes {
            for k in 0..n {
                let p = (rot + k) % n;
                if prioritize && pass == 0 && !gate.is_wanted(p) {
                    continue;
                }
                let lane = &lanes[p];
                if lane.applied.load(Ordering::Acquire) >= frontier_now {
                    continue;
                }
                let Some(mut q) = lane.queue.try_lock() else {
                    continue; // another worker owns this shard
                };
                if lane.applied.load(Ordering::Acquire) >= frontier_now {
                    continue;
                }
                let drained = std::mem::take(&mut *q);
                let t0 = Instant::now();
                for (ts, w) in drained {
                    match db.table(w.table) {
                        Ok(t) => {
                            // The drained queue is owned: the after-image
                            // moves into the version chain, no copy.
                            t.install_lww(w.key, ts, w.after);
                        }
                        Err(e) => {
                            let mut s = err.lock();
                            if s.is_none() {
                                *s = Some(e);
                            }
                            return;
                        }
                    }
                }
                metrics.add_work(t0.elapsed());
                // The queue lock was held across the install: everything
                // enqueued before `frontier_now` was published is applied.
                lane.applied.fetch_max(frontier_now, Ordering::AcqRel);
                drop(q);
                gate.publish(p, frontier_now);
                rot = rot.wrapping_add(1);
                progressed = true;
                break 'scan;
            }
        }
        if progressed {
            continue;
        }
        if done_now
            && lanes
                .iter()
                .all(|l| l.applied.load(Ordering::Acquire) >= frontier())
        {
            return;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
}
