//! End-to-end recovery orchestration: checkpoint recovery followed by log
//! recovery (§2.3), for any of the five schemes.

use crate::metrics::{Breakdown, RecoveryMetrics};
use crate::recovery::checkpoint::{recover_checkpoint, CheckpointRecovery, CheckpointTarget};
use crate::recovery::raw::RawStore;
use crate::recovery::{alr_p, clr, clr_p, llr, llr_p, plr, LogInventory};
use crate::runtime::ReplayMode;
use crate::static_analysis::GlobalGraph;
use pacman_common::{Result, Timestamp};
use pacman_engine::{Catalog, Database};
use pacman_sproc::ProcRegistry;
use pacman_storage::StorageSet;
use pacman_wal::checkpoint::read_manifest;
use pacman_wal::pepoch::PepochHandle;
use std::sync::Arc;
use std::time::Instant;

/// Which recovery scheme to run (§6.2's five competitors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryScheme {
    /// Physical log recovery; `latch = false` is the Fig. 15 ablation.
    Plr {
        /// Acquire per-tuple latches during replay.
        latch: bool,
    },
    /// SiloR-style logical log recovery.
    Llr {
        /// Acquire per-tuple latches during replay.
        latch: bool,
    },
    /// Parallel latch-free logical recovery adapted from PACMAN (§4.5).
    LlrP,
    /// Single-threaded command log recovery.
    Clr,
    /// PACMAN.
    ClrP {
        /// Replay mode (Fig. 19 ablation; `Pipelined` is full PACMAN).
        mode: ReplayMode,
    },
    /// Adaptive hybrid log recovery: PACMAN's partitioned schedule over a
    /// mixed command/logical log (`LogScheme::Adaptive`).
    AlrP {
        /// Replay mode (`Pipelined` is the full scheme).
        mode: ReplayMode,
    },
}

impl RecoveryScheme {
    /// Label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryScheme::Plr { latch: true } => "PLR",
            RecoveryScheme::Plr { latch: false } => "PLR-nolatch",
            RecoveryScheme::Llr { latch: true } => "LLR",
            RecoveryScheme::Llr { latch: false } => "LLR-nolatch",
            RecoveryScheme::LlrP => "LLR-P",
            RecoveryScheme::Clr => "CLR",
            RecoveryScheme::ClrP {
                mode: ReplayMode::PureStatic,
            } => "CLR-P/static",
            RecoveryScheme::ClrP {
                mode: ReplayMode::Synchronous,
            } => "CLR-P/sync",
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            } => "CLR-P",
            RecoveryScheme::AlrP {
                mode: ReplayMode::PureStatic,
            } => "ALR-P/static",
            RecoveryScheme::AlrP {
                mode: ReplayMode::Synchronous,
            } => "ALR-P/sync",
            RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            } => "ALR-P",
        }
    }
}

/// Recovery configuration.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Scheme to run.
    pub scheme: RecoveryScheme,
    /// Recovery threads (the x-axis of Figs. 13-15).
    pub threads: usize,
}

/// Timing report of one recovery run (the raw material of Figs. 13-17/20).
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Scheme label.
    pub scheme: String,
    /// Threads used.
    pub threads: usize,
    /// Pure checkpoint file reloading (Fig. 13a), seconds.
    pub checkpoint_reload_secs: f64,
    /// Overall checkpoint recovery (Fig. 13b), seconds.
    pub checkpoint_total_secs: f64,
    /// Pure log file reloading (Fig. 14a), seconds.
    pub log_reload_secs: f64,
    /// Overall log recovery (Fig. 14b), seconds.
    pub log_total_secs: f64,
    /// End-to-end recovery (Fig. 16), seconds.
    pub total_secs: f64,
    /// Time breakdown (Fig. 20).
    pub breakdown: Breakdown,
    /// Transactions replayed.
    pub txns: u64,
    /// Command records re-executed (mixed-log replay accounting).
    pub replayed_commands: u64,
    /// Tuple-level records applied as after-images.
    pub applied_writes: u64,
    /// Tuples restored from the checkpoint.
    pub checkpoint_tuples: u64,
    /// The durability frontier used.
    pub pepoch: u64,
    /// Checkpoint snapshot timestamp (0 = no checkpoint found).
    pub ckpt_ts: Timestamp,
}

/// A recovered database plus its report.
pub struct RecoveryOutcome {
    /// The recovered, ready-to-serve database.
    pub db: Arc<Database>,
    /// Timings and counters.
    pub report: RecoveryReport,
}

/// Run full recovery (checkpoint + log) against what the crash left on the
/// devices.
pub fn recover(
    storage: &StorageSet,
    catalog: &Catalog,
    registry: &ProcRegistry,
    config: &RecoveryConfig,
) -> Result<RecoveryOutcome> {
    let t_all = Instant::now();
    let metrics = Arc::new(RecoveryMetrics::new());
    let pepoch = PepochHandle::read_persisted(storage.disk(0));
    let manifest = read_manifest(storage)?;
    let inventory = LogInventory::scan(storage);
    let db = Arc::new(Database::new(catalog.clone()));
    let threads = config.threads.max(1);

    // Stage 1: checkpoint recovery.
    let raw = RawStore::new(catalog.len());
    let ckpt: CheckpointRecovery = match (&manifest, &config.scheme) {
        (None, _) => CheckpointRecovery::default(),
        (Some(m), RecoveryScheme::Plr { .. }) => {
            recover_checkpoint(storage, m, threads, CheckpointTarget::Raw(&raw))?
        }
        (Some(m), _) => recover_checkpoint(storage, m, threads, CheckpointTarget::Tables(&db))?,
    };
    let after_ts = ckpt.ckpt_ts;

    // Stage 2: log recovery.
    let log = match config.scheme {
        RecoveryScheme::Plr { latch } => plr::recover_log(
            storage, &inventory, &raw, &db, threads, latch, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::Llr { latch } => llr::recover_log(
            storage, &inventory, &db, threads, latch, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::LlrP => llr_p::recover_log(
            storage, &inventory, &db, threads, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::Clr => clr::recover_log(
            storage, &inventory, &db, registry, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::ClrP { mode } => {
            // Static analysis happens at compile time (§4.1); the graph is
            // rebuilt here for self-containedness but not billed to
            // recovery time.
            let gdg = Arc::new(GlobalGraph::analyze(registry.all())?);
            clr_p::recover_log(
                storage, &inventory, &db, &gdg, registry, threads, mode, pepoch, after_ts, &metrics,
            )?
        }
        RecoveryScheme::AlrP { mode } => {
            let gdg = Arc::new(GlobalGraph::analyze(registry.all())?);
            alr_p::recover_log(
                storage, &inventory, &db, &gdg, registry, threads, mode, pepoch, after_ts, &metrics,
            )?
        }
    };

    // Resume the clock past everything replayed.
    db.clock().advance_to(log.max_ts.max(after_ts) + 1);

    let report = RecoveryReport {
        scheme: config.scheme.label().to_string(),
        threads,
        checkpoint_reload_secs: ckpt.reload.as_secs_f64(),
        checkpoint_total_secs: ckpt.total.as_secs_f64(),
        log_reload_secs: log.reload.as_secs_f64(),
        log_total_secs: log.total.as_secs_f64(),
        total_secs: t_all.elapsed().as_secs_f64(),
        breakdown: metrics.breakdown(),
        txns: log.txns,
        replayed_commands: log.replayed_commands,
        applied_writes: log.applied_writes,
        checkpoint_tuples: ckpt.tuples,
        pepoch,
        ckpt_ts: after_ts,
    };
    Ok(RecoveryOutcome { db, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Encoder, ProcId, Row, TableId, Value};
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_wal::{LogPayload, TxnLogRecord};

    const T: TableId = TableId::new(0);

    fn setup() -> (Catalog, ProcRegistry, StorageSet) {
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "Add", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();
        (c, reg, StorageSet::for_tests())
    }

    /// Build a pre-crash database, checkpoint the seeded state, write a
    /// command log for the updates, and verify CLR and every CLR-P mode
    /// recover the same fingerprint.
    #[test]
    fn command_schemes_agree_end_to_end() {
        let (catalog, reg, storage) = setup();
        let reference = Arc::new(Database::new(catalog.clone()));
        for k in 0..8u64 {
            reference
                .seed_row(T, k, Row::from([Value::Int(0)]))
                .unwrap();
        }
        // Checkpoint the seeded state so recovery has a base image.
        pacman_wal::run_checkpoint(&reference, &storage, 1).unwrap();
        let mut buf = Vec::new();
        for i in 0..30u64 {
            let key = i % 8;
            let params: Vec<Value> = vec![Value::Int(key as i64), Value::Int(1)];
            // Apply to the reference through the engine.
            let mut txn = reference.begin();
            let r = txn.read(T, key).unwrap();
            let v = r.col(0).as_int().unwrap();
            txn.write(T, key, r.with_col(0, Value::Int(v + 1))).unwrap();
            let info = txn.commit_with(|| 1 + i / 10).unwrap();
            TxnLogRecord {
                ts: info.ts,
                payload: LogPayload::Command {
                    proc: ProcId::new(0),
                    params: params.into(),
                },
            }
            .encode(&mut buf);
            if (i + 1) % 10 == 0 {
                storage
                    .disk(0)
                    .append(&format!("log/00/{:010}", i / 10), &buf);
                buf.clear();
            }
        }
        storage
            .disk(0)
            .write_file("pepoch.log", &u64::MAX.to_le_bytes());

        for scheme in [
            RecoveryScheme::Clr,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
            RecoveryScheme::ClrP {
                mode: ReplayMode::Synchronous,
            },
            RecoveryScheme::ClrP {
                mode: ReplayMode::PureStatic,
            },
        ] {
            let out = recover(
                &storage,
                &catalog,
                &reg,
                &RecoveryConfig { scheme, threads: 4 },
            )
            .unwrap();
            assert_eq!(out.report.checkpoint_tuples, 8);
            assert_eq!(
                out.db.fingerprint(),
                reference.fingerprint(),
                "{} diverged",
                out.report.scheme
            );
            assert_eq!(out.report.txns, 30);
        }
    }

    #[test]
    fn missing_everything_recovers_empty() {
        let (catalog, reg, storage) = setup();
        let out = recover(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::Clr,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(out.db.total_tuples(), 0);
        assert_eq!(out.report.txns, 0);
    }
}
