//! End-to-end recovery orchestration (§2.3), in two shapes:
//!
//! * [`recover`] — the classic *offline* call: checkpoint restore + log
//!   replay run to completion before the database is handed back;
//! * [`recover_online`] — *instant restart*: checkpoint restore runs
//!   inline, then a [`RecoverySession`] replays the log on background
//!   workers while the engine serves new transactions, gated per replay
//!   partition through a [`pacman_engine::RecoveryGate`] (see
//!   `docs/RECOVERY.md`, "Online recovery lifecycle").

use crate::metrics::{Breakdown, RecoveryMetrics};
use crate::recovery::checkpoint::{
    recover_checkpoint_chain, run_lazy_loader, CheckpointRecovery, CheckpointTarget,
};
use crate::recovery::gate::{GateMap, GatedAdmission, ShardMap};
use crate::recovery::raw::RawStore;
use crate::recovery::{alr_p, clr, clr_p, llr, llr_p, plr, LogInventory};
use crate::runtime::ReplayMode;
use crate::static_analysis::GlobalGraph;
use pacman_common::clock::{epoch_floor, epoch_of, EPOCH_SHIFT};
use pacman_common::{Error, Result, Timestamp};
use pacman_engine::{AdmissionControl, Catalog, Database, RecoveryGate};
use pacman_obs::{RecoveryPhase, TraceEvent};
use pacman_sproc::ProcRegistry;
use pacman_storage::{StorageSet, TraceDumpSink};
use pacman_wal::checkpoint::read_chain;
use pacman_wal::pepoch::PepochHandle;
use pacman_wal::{Durability, RetentionHold};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Distinguishes concurrent recoveries' dump-sink registrations on the
/// shared (usually global) tracer.
static RECOVERY_SINK_IDS: AtomicU64 = AtomicU64::new(0);

/// Registers a uniquely-keyed [`TraceDumpSink`] over this recovery's own
/// `StorageSet` and unregisters it on drop: concurrent recoveries in one
/// process never cross-write dumps into each other's storage, and a
/// finished recovery stops pinning its `StorageSet` through the tracer.
/// Keep the guard alive through the point where a failure dump can fire
/// (gate poison happens on the session thread, so the session owns it).
struct RecoverySinkGuard {
    key: String,
}

impl RecoverySinkGuard {
    fn register(storage: &StorageSet) -> RecoverySinkGuard {
        let key = format!(
            "recovery-{}",
            RECOVERY_SINK_IDS.fetch_add(1, Ordering::Relaxed)
        );
        pacman_obs::tracer().set_sink(&key, Arc::new(TraceDumpSink::new(storage.clone())));
        RecoverySinkGuard { key }
    }
}

impl Drop for RecoverySinkGuard {
    fn drop(&mut self) {
        pacman_obs::tracer().remove_sink(&self.key);
    }
}

/// Which recovery scheme to run (§6.2's five competitors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryScheme {
    /// Physical log recovery; `latch = false` is the Fig. 15 ablation.
    Plr {
        /// Acquire per-tuple latches during replay.
        latch: bool,
    },
    /// SiloR-style logical log recovery.
    Llr {
        /// Acquire per-tuple latches during replay.
        latch: bool,
    },
    /// Parallel latch-free logical recovery adapted from PACMAN (§4.5).
    LlrP,
    /// Single-threaded command log recovery.
    Clr,
    /// PACMAN.
    ClrP {
        /// Replay mode (Fig. 19 ablation; `Pipelined` is full PACMAN).
        mode: ReplayMode,
    },
    /// Adaptive hybrid log recovery: PACMAN's partitioned schedule over a
    /// mixed command/logical log (`LogScheme::Adaptive`).
    AlrP {
        /// Replay mode (`Pipelined` is the full scheme).
        mode: ReplayMode,
    },
}

impl RecoveryScheme {
    /// Label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryScheme::Plr { latch: true } => "PLR",
            RecoveryScheme::Plr { latch: false } => "PLR-nolatch",
            RecoveryScheme::Llr { latch: true } => "LLR",
            RecoveryScheme::Llr { latch: false } => "LLR-nolatch",
            RecoveryScheme::LlrP => "LLR-P",
            RecoveryScheme::Clr => "CLR",
            RecoveryScheme::ClrP {
                mode: ReplayMode::PureStatic,
            } => "CLR-P/static",
            RecoveryScheme::ClrP {
                mode: ReplayMode::Synchronous,
            } => "CLR-P/sync",
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            } => "CLR-P",
            RecoveryScheme::AlrP {
                mode: ReplayMode::PureStatic,
            } => "ALR-P/static",
            RecoveryScheme::AlrP {
                mode: ReplayMode::Synchronous,
            } => "ALR-P/sync",
            RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            } => "ALR-P",
        }
    }
}

/// Recovery configuration.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Scheme to run.
    pub scheme: RecoveryScheme,
    /// Recovery threads (the x-axis of Figs. 13-15).
    pub threads: usize,
}

/// Timing report of one recovery run (the raw material of Figs. 13-17/20).
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Scheme label.
    pub scheme: String,
    /// Threads used.
    pub threads: usize,
    /// Pure checkpoint file reloading (Fig. 13a), seconds.
    pub checkpoint_reload_secs: f64,
    /// Overall checkpoint recovery (Fig. 13b), seconds.
    pub checkpoint_total_secs: f64,
    /// Pure log file reloading (Fig. 14a), seconds.
    pub log_reload_secs: f64,
    /// Overall log recovery (Fig. 14b), seconds.
    pub log_total_secs: f64,
    /// End-to-end recovery (Fig. 16), seconds.
    pub total_secs: f64,
    /// Time breakdown (Fig. 20).
    pub breakdown: Breakdown,
    /// Transactions replayed.
    pub txns: u64,
    /// Command records re-executed (mixed-log replay accounting).
    pub replayed_commands: u64,
    /// Tuple-level records applied as after-images.
    pub applied_writes: u64,
    /// Tuples restored from the checkpoint.
    pub checkpoint_tuples: u64,
    /// Manifest-chain links the base image was resolved across (0 = no
    /// checkpoint, 1 = a single full snapshot).
    pub ckpt_chain_len: usize,
    /// Checkpoint shards loaded on demand (a blocked admission wanted
    /// them; lazy online reload only).
    pub ondemand_shard_loads: u64,
    /// Checkpoint shards loaded by the background sweep (lazy online
    /// reload only).
    pub background_shard_loads: u64,
    /// The durability frontier used.
    pub pepoch: u64,
    /// Checkpoint coverage timestamp (0 = no checkpoint found).
    pub ckpt_ts: Timestamp,
}

/// A recovered database plus its report.
pub struct RecoveryOutcome {
    /// The recovered, ready-to-serve database.
    pub db: Arc<Database>,
    /// Timings and counters.
    pub report: RecoveryReport,
}

/// Run full recovery (checkpoint + log) against what the crash left on the
/// devices.
pub fn recover(
    storage: &StorageSet,
    catalog: &Catalog,
    registry: &ProcRegistry,
    config: &RecoveryConfig,
) -> Result<RecoveryOutcome> {
    let t_all = Instant::now();
    let metrics = Arc::new(RecoveryMetrics::new());
    metrics.register_into(pacman_obs::registry());
    let tracer = pacman_obs::tracer();
    let _sink = RecoverySinkGuard::register(storage);
    tracer.emit(TraceEvent::Phase {
        phase: RecoveryPhase::Scan,
    });
    let pepoch = PepochHandle::read_persisted(storage.disk(0));
    let chain = read_chain(storage)?;
    let inventory = LogInventory::scan(storage);
    let db = Arc::new(Database::new(catalog.clone()));
    let threads = config.threads.max(1);

    // Stage 1: checkpoint recovery — every offline scheme restores the
    // manifest chain eagerly through the parallel shard loader.
    tracer.emit(TraceEvent::Phase {
        phase: RecoveryPhase::Load,
    });
    let raw = RawStore::new(catalog.len());
    let ckpt: CheckpointRecovery = match (&chain, &config.scheme) {
        (None, _) => CheckpointRecovery::default(),
        (Some(c), RecoveryScheme::Plr { .. }) => {
            recover_checkpoint_chain(storage, c, threads, CheckpointTarget::Raw(&raw))?
        }
        (Some(c), _) => {
            recover_checkpoint_chain(storage, c, threads, CheckpointTarget::Tables(&db))?
        }
    };
    let after_ts = ckpt.ckpt_ts;

    // Stage 2: log recovery.
    tracer.emit(TraceEvent::Phase {
        phase: RecoveryPhase::Replay,
    });
    let log = match config.scheme {
        RecoveryScheme::Plr { latch } => plr::recover_log(
            storage, &inventory, &raw, &db, threads, latch, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::Llr { latch } => llr::recover_log(
            storage, &inventory, &db, threads, latch, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::LlrP => llr_p::recover_log(
            storage, &inventory, &db, threads, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::Clr => clr::recover_log(
            storage, &inventory, &db, registry, pepoch, after_ts, &metrics,
        )?,
        RecoveryScheme::ClrP { mode } => {
            // Static analysis happens at compile time (§4.1); the graph is
            // rebuilt here for self-containedness but not billed to
            // recovery time.
            let gdg = Arc::new(GlobalGraph::analyze(registry.all())?);
            clr_p::recover_log(
                storage, &inventory, &db, &gdg, registry, threads, mode, pepoch, after_ts, &metrics,
            )?
        }
        RecoveryScheme::AlrP { mode } => {
            let gdg = Arc::new(GlobalGraph::analyze(registry.all())?);
            alr_p::recover_log(
                storage, &inventory, &db, &gdg, registry, threads, mode, pepoch, after_ts, &metrics,
            )?
        }
    };

    // Resume the clock past everything replayed.
    db.clock().advance_to(log.max_ts.max(after_ts) + 1);

    let report = RecoveryReport {
        scheme: config.scheme.label().to_string(),
        threads,
        checkpoint_reload_secs: ckpt.reload.as_secs_f64(),
        checkpoint_total_secs: ckpt.total.as_secs_f64(),
        log_reload_secs: log.reload.as_secs_f64(),
        log_total_secs: log.total.as_secs_f64(),
        total_secs: t_all.elapsed().as_secs_f64(),
        breakdown: metrics.breakdown(),
        txns: log.txns,
        replayed_commands: log.replayed_commands,
        applied_writes: log.applied_writes,
        checkpoint_tuples: ckpt.tuples,
        ckpt_chain_len: ckpt.chain_len,
        ondemand_shard_loads: 0,
        background_shard_loads: 0,
        pepoch,
        ckpt_ts: after_ts,
    };
    tracer.emit(TraceEvent::Phase {
        phase: RecoveryPhase::Complete,
    });
    Ok(RecoveryOutcome { db, report })
}

/// Lifecycle state of an online recovery session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Background workers are still replaying the log; admission is
    /// partition-gated.
    Replaying,
    /// Replay finished; the gate is permanently open.
    Complete,
    /// Recovery hit an error; the gate was *poisoned* — blocked waiters
    /// unblock with `false` and nothing further is admitted, because the
    /// half-recovered state is not trustworthy. [`RecoverySession::wait`]
    /// returns the error.
    Failed,
}

struct SessionInner {
    state: SessionState,
    report: Option<RecoveryReport>,
    error: Option<Error>,
    /// Retention hold pinning the session's unreplayed tail (and blocking
    /// checkpoint rounds) in a reopened durability stack — released at
    /// `Complete`, leaked (held forever) at `Failed`. See
    /// [`RecoverySession::pin_retention_on`].
    hold: Option<RetentionHold>,
}

struct SessionShared {
    inner: Mutex<SessionInner>,
    cv: Condvar,
}

/// Handle to an in-flight online recovery: the database is live and may
/// serve admitted transactions while PACMAN replay proceeds on background
/// workers. Dropping the handle without calling [`RecoverySession::wait`]
/// detaches the replay (it still runs to completion through the shared
/// state, but errors go unobserved), so call `wait` when the outcome
/// matters.
pub struct RecoverySession {
    db: Arc<Database>,
    gate: Arc<RecoveryGate>,
    admission: Arc<GatedAdmission>,
    shared: Arc<SessionShared>,
    join: Option<JoinHandle<()>>,
    /// Log floor of the session's unreplayed tail (epoch of the base
    /// image's coverage; 0 with no checkpoint) — what a retention hold
    /// must keep.
    pin_log_epoch: u64,
    /// Root timestamp of the chain the base image resolves across
    /// (`u64::MAX` with no checkpoint: no chain interest).
    pin_chain_root: Timestamp,
}

impl RecoverySession {
    /// The live (still-recovering) database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The replay-watermark gate (partition-level introspection).
    pub fn gate(&self) -> &Arc<RecoveryGate> {
        &self.gate
    }

    /// Admission control for transaction drivers: blocks a transaction
    /// until its static footprint is fully replayed.
    pub fn admission(&self) -> Arc<dyn AdmissionControl> {
        Arc::clone(&self.admission) as Arc<dyn AdmissionControl>
    }

    /// The typed admission handle (footprint introspection in tests).
    pub fn gated_admission(&self) -> &Arc<GatedAdmission> {
        &self.admission
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.shared.inner.lock().state
    }

    /// Whether replay has finished (successfully or not).
    pub fn is_settled(&self) -> bool {
        self.state() != SessionState::Replaying
    }

    /// Pin this session's unreplayed tail in `durability`'s retention
    /// manager: one recovery [`RetentionHold`] keeps the log batches the
    /// replay still reads (epochs at or above the base image's coverage)
    /// and the manifest chain it resolves against, and blocks checkpoint
    /// rounds while live — a checkpoint taken mid-replay would snapshot
    /// at a fresh timestamp while old-timestamp installs still race the
    /// scan, claiming coverage it does not have.
    ///
    /// Call it right after [`Durability::reopen`] over the same devices.
    /// The hold is released when the session completes; a *failed*
    /// session leaks it — the half-recovered state is suspect, so
    /// checkpoints and reclamation stay blocked for good.
    pub fn pin_retention_on(&self, durability: &Arc<Durability>) {
        let mut inner = self.shared.inner.lock();
        match inner.state {
            SessionState::Complete => {} // nothing left to pin
            SessionState::Replaying => {
                inner.hold = Some(
                    durability
                        .retention()
                        .pin_recovery(self.pin_log_epoch, self.pin_chain_root),
                );
            }
            // A checkpoint of the suspect state would replace the last
            // good one (and reclaim the log below it) — pin, never release.
            SessionState::Failed => durability
                .retention()
                .pin_recovery(self.pin_log_epoch, self.pin_chain_root)
                .leak(),
        }
    }

    /// Block until replay completes and return the recovered database plus
    /// the report (the offline-equivalent outcome).
    pub fn wait(mut self) -> Result<RecoveryOutcome> {
        {
            let mut inner = self.shared.inner.lock();
            while inner.state == SessionState::Replaying {
                self.shared.cv.wait(&mut inner);
            }
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        let mut inner = self.shared.inner.lock();
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        let report = inner
            .report
            .take()
            .ok_or_else(|| Error::Unknown("recovery session finished without a report".into()))?;
        Ok(RecoveryOutcome {
            db: Arc::clone(&self.db),
            report,
        })
    }
}

/// Start an online recovery session: restore the checkpoint inline, then
/// replay the log on background workers while the returned session's
/// database serves admitted transactions.
///
/// Supported schemes: `Clr`, `ClrP`, `AlrP` (per-block gating) and `LlrP`
/// (per-table-shard gating). `Plr`/`Llr` recover multi-version state with
/// per-tuple latches and have no partition watermark to gate on — use
/// [`recover`] for those.
pub fn recover_online(
    storage: &StorageSet,
    catalog: &Catalog,
    registry: &ProcRegistry,
    config: &RecoveryConfig,
) -> Result<RecoverySession> {
    if matches!(
        config.scheme,
        RecoveryScheme::Plr { .. } | RecoveryScheme::Llr { .. }
    ) {
        return Err(Error::InvalidConfig(format!(
            "online recovery is not defined for {}: no partition watermark to gate on",
            config.scheme.label()
        )));
    }
    let t_all = Instant::now();
    let metrics = Arc::new(RecoveryMetrics::new());
    metrics.register_into(pacman_obs::registry());
    let tracer = pacman_obs::tracer();
    let sink_guard = RecoverySinkGuard::register(storage);
    tracer.emit(TraceEvent::Phase {
        phase: RecoveryPhase::Scan,
    });
    let pepoch = PepochHandle::read_persisted(storage.disk(0));
    let chain = read_chain(storage)?;
    let inventory = LogInventory::scan(storage);
    let db = Arc::new(Database::new(catalog.clone()));
    let threads = config.threads.max(1);

    // Stage 1: base-image restore. Command schemes load the chain eagerly
    // inline (their replay re-executes reads, so the whole base image
    // must be resident before replay starts). The tuple scheme (LLR-P)
    // defers the load *into* the session: shards stream in lazily on
    // background workers, and the gate's residency plane admits a
    // transaction as soon as its own shards are in.
    let lazy = matches!(config.scheme, RecoveryScheme::LlrP);
    tracer.emit(TraceEvent::Phase {
        phase: RecoveryPhase::Load,
    });
    let ckpt: CheckpointRecovery = match &chain {
        None => CheckpointRecovery::default(),
        Some(c) if !lazy => {
            recover_checkpoint_chain(storage, c, threads, CheckpointTarget::Tables(&db))?
        }
        Some(c) => CheckpointRecovery {
            ckpt_ts: c.ts(),
            chain_len: c.len(),
            ..Default::default()
        },
    };
    let after_ts = ckpt.ckpt_ts;

    // New commits must sort strictly after everything the log can still
    // install: push the clock past the durability frontier's epoch (every
    // replayable record has epoch <= pepoch) and the checkpoint snapshot.
    // A legacy `u64::MAX` frontier ("everything durable" sentinel) gives
    // no epoch bound up front; the post-replay advance to `max_ts + 1`
    // covers it once the log has been read.
    let mut clock_floor = after_ts.saturating_add(1);
    if pepoch != u64::MAX {
        let next_epoch = pepoch.saturating_add(1).min(u64::MAX >> EPOCH_SHIFT);
        clock_floor = clock_floor.max(epoch_floor(next_epoch));
    }
    db.clock().advance_to(clock_floor);

    // Gate + footprint map, sized by the scheme's partition space. The
    // tuple scheme's shard numbering is built once and shared by the gate
    // size, the footprint map, and the replay publisher.
    let gdg = Arc::new(GlobalGraph::analyze(registry.all())?);
    let mut session_shards = None;
    let (gate, map) = match config.scheme {
        RecoveryScheme::LlrP => {
            let shards = ShardMap::new(&db);
            // Residency plane over the same (table, shard) numbering as
            // the replay watermarks: one footprint gates both.
            let gate = RecoveryGate::with_residency(shards.total(), shards.total());
            if chain.is_none() {
                gate.set_all_resident();
            }
            let map = GateMap::shards(Arc::clone(&db), shards.clone(), registry);
            session_shards = Some(shards);
            (gate, map)
        }
        _ => {
            let map = GateMap::blocks(&gdg, registry);
            let gate = RecoveryGate::new(gdg.num_blocks());
            (gate, map)
        }
    };
    gate.set_total_batches(inventory.batches().len() as u64);
    let admission = GatedAdmission::new(Arc::clone(&gate), map);

    // What a retention hold must keep for this session: log batches that
    // may contain the unreplayed tail (records with ts above the base
    // image can share the coverage epoch's batch), and every link of the
    // chain the base image resolves across (root..tip).
    let pin_log_epoch = epoch_of(after_ts);
    let pin_chain_root = chain
        .as_ref()
        .map(|c| c.manifests.last().expect("chains are non-empty").ts)
        .unwrap_or(u64::MAX);

    let shared = Arc::new(SessionShared {
        inner: Mutex::new(SessionInner {
            state: SessionState::Replaying,
            report: None,
            error: None,
            hold: None,
        }),
        cv: Condvar::new(),
    });

    let join = {
        let shared = Arc::clone(&shared);
        let gate = Arc::clone(&gate);
        let db = Arc::clone(&db);
        let storage = storage.clone();
        let registry = registry.clone();
        let scheme = config.scheme;
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("recovery-session".into())
            .spawn(move || {
                // A panic anywhere in the recovery body must still settle
                // the session (gate poisoned, waiters woken) — otherwise
                // every blocked admission and `wait()` caller hangs.
                let tracer = pacman_obs::tracer();
                tracer.emit(TraceEvent::Phase {
                    phase: RecoveryPhase::Replay,
                });
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> Result<RecoveryReport> {
                        let mut ckpt = ckpt;
                        let log = match scheme {
                            RecoveryScheme::Clr => clr::recover_log_online(
                                &storage,
                                &inventory,
                                &db,
                                &registry,
                                pepoch,
                                after_ts,
                                &metrics,
                                Some(&gate),
                            )?,
                            RecoveryScheme::ClrP { mode } => clr_p::recover_log_online(
                                &storage,
                                &inventory,
                                &db,
                                &gdg,
                                &registry,
                                threads,
                                mode,
                                pepoch,
                                after_ts,
                                &metrics,
                                Some(Arc::clone(&gate)),
                            )?,
                            RecoveryScheme::AlrP { mode } => alr_p::recover_log_online(
                                &storage,
                                &inventory,
                                &db,
                                &gdg,
                                &registry,
                                threads,
                                mode,
                                pepoch,
                                after_ts,
                                &metrics,
                                Some(Arc::clone(&gate)),
                            )?,
                            RecoveryScheme::LlrP => {
                                let shards =
                                    session_shards.as_ref().expect("LlrP built its shard map");
                                // The lazy base-image loader races the replay on
                                // purpose: both sides install timestamped LWW
                                // (part timestamps sort below every replayed
                                // record), so per-shard arrival order is
                                // immaterial and the gate — residency plus
                                // final watermark — is the only admission
                                // condition.
                                let mut log_res: Option<Result<_>> = None;
                                let mut load_res: Result<CheckpointRecovery> = Ok(ckpt);
                                crossbeam::thread::scope(|scope| {
                                    if let Some(c) = &chain {
                                        let gate2 = Arc::clone(&gate);
                                        let db2 = Arc::clone(&db);
                                        let storage2 = storage.clone();
                                        let metrics2 = Arc::clone(&metrics);
                                        let h = scope.spawn(move |_| {
                                            run_lazy_loader(
                                                &storage2,
                                                c,
                                                &db2,
                                                &gate2,
                                                |p| {
                                                    shards.shard_partition(
                                                        p.table as usize,
                                                        p.shard as usize,
                                                    )
                                                },
                                                threads,
                                                &metrics2,
                                            )
                                        });
                                        log_res = Some(llr_p::recover_log_online(
                                            &storage, &inventory, &db, &gate, shards, threads,
                                            pepoch, after_ts, &metrics,
                                        ));
                                        load_res = h.join().expect("lazy loader thread");
                                    } else {
                                        log_res = Some(llr_p::recover_log_online(
                                            &storage, &inventory, &db, &gate, shards, threads,
                                            pepoch, after_ts, &metrics,
                                        ));
                                    }
                                })
                                .expect("llr-p online session scope");
                                let loaded = load_res?;
                                ckpt.tuples = loaded.tuples;
                                ckpt.reload = loaded.reload;
                                ckpt.total = loaded.total;
                                log_res.expect("replay ran")?
                            }
                            RecoveryScheme::Plr { .. } | RecoveryScheme::Llr { .. } => {
                                unreachable!()
                            }
                        };
                        db.clock().advance_to(log.max_ts.max(after_ts) + 1);
                        Ok(RecoveryReport {
                            scheme: scheme.label().to_string(),
                            threads,
                            checkpoint_reload_secs: ckpt.reload.as_secs_f64(),
                            checkpoint_total_secs: ckpt.total.as_secs_f64(),
                            log_reload_secs: log.reload.as_secs_f64(),
                            log_total_secs: log.total.as_secs_f64(),
                            total_secs: t_all.elapsed().as_secs_f64(),
                            breakdown: metrics.breakdown(),
                            txns: log.txns,
                            replayed_commands: log.replayed_commands,
                            applied_writes: log.applied_writes,
                            checkpoint_tuples: ckpt.tuples,
                            ckpt_chain_len: ckpt.chain_len,
                            ondemand_shard_loads: metrics.ondemand_shard_loads(),
                            background_shard_loads: metrics.background_shard_loads(),
                            pepoch,
                            ckpt_ts: after_ts,
                        })
                    },
                ))
                .unwrap_or_else(|_| Err(Error::Unknown("recovery session panicked".into())));
                // Settle the gate first so waiters never hang: open it on
                // success, *poison* it on failure — a half-recovered state
                // (missing base-image shards, unreplayed partitions) must
                // not serve commits; blocked admissions unblock with
                // `false` and nothing further is admitted.
                match &result {
                    Ok(_) => {
                        tracer.emit(TraceEvent::Phase {
                            phase: RecoveryPhase::Complete,
                        });
                        gate.finish();
                    }
                    Err(_) => {
                        // `fail()` poisons the gate and triggers the
                        // flight-recorder failure dump.
                        tracer.emit(TraceEvent::Phase {
                            phase: RecoveryPhase::Failed,
                        });
                        gate.fail();
                    }
                }
                let mut inner = shared.inner.lock();
                match result {
                    Ok(report) => {
                        inner.state = SessionState::Complete;
                        inner.report = Some(report);
                        // Release the retention hold: checkpoints (and the
                        // reclamation behind them) may resume.
                        inner.hold = None;
                    }
                    Err(e) => {
                        inner.state = SessionState::Failed;
                        inner.error = Some(e);
                        // The hold is leaked, never released: the state is
                        // suspect, so checkpoints and reclamation stay
                        // blocked for the process lifetime.
                        if let Some(h) = inner.hold.take() {
                            h.leak();
                        }
                    }
                }
                shared.cv.notify_all();
                // The failure dump (inside `gate.fail()`) has landed by
                // now; release this session's sink registration so it
                // stops pinning the StorageSet and can never swallow a
                // later recovery's dumps.
                drop(sink_guard);
            })
            .map_err(|e| Error::Unknown(format!("spawn recovery session: {e}")))?
    };

    Ok(RecoverySession {
        db,
        gate,
        admission,
        shared,
        join: Some(join),
        pin_log_epoch,
        pin_chain_root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Encoder, ProcId, Row, TableId, Value};
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_wal::{LogPayload, TxnLogRecord};

    const T: TableId = TableId::new(0);

    fn setup() -> (Catalog, ProcRegistry, StorageSet) {
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "Add", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();
        (c, reg, StorageSet::for_tests())
    }

    /// Build a pre-crash database, checkpoint the seeded state, write a
    /// command log for the updates, and verify CLR and every CLR-P mode
    /// recover the same fingerprint.
    #[test]
    fn command_schemes_agree_end_to_end() {
        let (catalog, reg, storage) = setup();
        let reference = Arc::new(Database::new(catalog.clone()));
        for k in 0..8u64 {
            reference
                .seed_row(T, k, Row::from([Value::Int(0)]))
                .unwrap();
        }
        // Checkpoint the seeded state so recovery has a base image.
        pacman_wal::run_checkpoint(&reference, &storage, 1).unwrap();
        let mut buf = Vec::new();
        for i in 0..30u64 {
            let key = i % 8;
            let params: Vec<Value> = vec![Value::Int(key as i64), Value::Int(1)];
            // Apply to the reference through the engine.
            let mut txn = reference.begin();
            let r = txn.read(T, key).unwrap();
            let v = r.col(0).as_int().unwrap();
            txn.write(T, key, r.with_col(0, Value::Int(v + 1))).unwrap();
            let info = txn.commit_with(|| 1 + i / 10).unwrap();
            TxnLogRecord {
                ts: info.ts,
                payload: LogPayload::Command {
                    proc: ProcId::new(0),
                    params: params.into(),
                },
            }
            .encode(&mut buf);
            if (i + 1) % 10 == 0 {
                storage
                    .disk(0)
                    .append(&format!("log/00/{:010}", i / 10), &buf);
                buf.clear();
            }
        }
        storage
            .disk(0)
            .write_file("pepoch.log", &u64::MAX.to_le_bytes());

        for scheme in [
            RecoveryScheme::Clr,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
            RecoveryScheme::ClrP {
                mode: ReplayMode::Synchronous,
            },
            RecoveryScheme::ClrP {
                mode: ReplayMode::PureStatic,
            },
        ] {
            let out = recover(
                &storage,
                &catalog,
                &reg,
                &RecoveryConfig { scheme, threads: 4 },
            )
            .unwrap();
            assert_eq!(out.report.checkpoint_tuples, 8);
            assert_eq!(
                out.db.fingerprint(),
                reference.fingerprint(),
                "{} diverged",
                out.report.scheme
            );
            assert_eq!(out.report.txns, 30);
        }
    }

    /// Online recovery must converge to exactly the offline result, and
    /// its gate must go from closed to permanently open.
    #[test]
    fn online_recovery_matches_offline() {
        let (catalog, reg, storage) = setup();
        let reference = Arc::new(Database::new(catalog.clone()));
        for k in 0..8u64 {
            reference
                .seed_row(T, k, Row::from([Value::Int(0)]))
                .unwrap();
        }
        pacman_wal::run_checkpoint(&reference, &storage, 1).unwrap();
        let mut buf = Vec::new();
        for i in 0..30u64 {
            let key = i % 8;
            let params: Vec<Value> = vec![Value::Int(key as i64), Value::Int(1)];
            let mut txn = reference.begin();
            let r = txn.read(T, key).unwrap();
            let v = r.col(0).as_int().unwrap();
            txn.write(T, key, r.with_col(0, Value::Int(v + 1))).unwrap();
            let info = txn.commit_with(|| 1 + i / 10).unwrap();
            TxnLogRecord {
                ts: info.ts,
                payload: LogPayload::Command {
                    proc: ProcId::new(0),
                    params: params.into(),
                },
            }
            .encode(&mut buf);
            if (i + 1) % 10 == 0 {
                storage
                    .disk(0)
                    .append(&format!("log/00/{:010}", i / 10), &buf);
                buf.clear();
            }
        }
        storage
            .disk(0)
            .write_file("pepoch.log", &u64::MAX.to_le_bytes());

        for scheme in [
            RecoveryScheme::Clr,
            RecoveryScheme::ClrP {
                mode: ReplayMode::Pipelined,
            },
            RecoveryScheme::AlrP {
                mode: ReplayMode::Pipelined,
            },
        ] {
            let session = recover_online(
                &storage,
                &catalog,
                &reg,
                &RecoveryConfig { scheme, threads: 4 },
            )
            .unwrap();
            // Admission through the public trait: blocks until the proc's
            // footprint (here: the single block) is replayed, then passes.
            let admission = session.admission();
            let stop = std::sync::atomic::AtomicBool::new(false);
            assert!(admission.admit(
                ProcId::new(0),
                &pacman_sproc::params([Value::Int(3), Value::Int(1)]),
                &stop
            ));
            let out = session.wait().unwrap();
            assert_eq!(out.report.txns, 30, "{}", out.report.scheme);
            assert_eq!(
                out.db.fingerprint(),
                reference.fingerprint(),
                "{} diverged online",
                out.report.scheme
            );
            assert!(admission.is_open());
            // The clock resumed past everything replayed: a fresh commit
            // must take a strictly newer timestamp.
            let mut t = out.db.begin();
            let r = t.read(T, 0).unwrap();
            t.write(T, 0, r.clone()).unwrap();
            assert!(t.commit().is_ok());
        }
    }

    #[test]
    fn online_rejects_latched_schemes() {
        let (catalog, reg, storage) = setup();
        for scheme in [
            RecoveryScheme::Plr { latch: true },
            RecoveryScheme::Llr { latch: false },
        ] {
            assert!(recover_online(
                &storage,
                &catalog,
                &reg,
                &RecoveryConfig { scheme, threads: 2 }
            )
            .is_err());
        }
    }

    #[test]
    fn online_empty_directory_opens_immediately() {
        let (catalog, reg, storage) = setup();
        let session = recover_online(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::ClrP {
                    mode: ReplayMode::Pipelined,
                },
                threads: 2,
            },
        )
        .unwrap();
        let out = session.wait().unwrap();
        assert_eq!(out.report.txns, 0);
        assert_eq!(out.db.total_tuples(), 0);
    }

    /// A lazy LLR-P session whose base image cannot be fully loaded must
    /// settle `Failed` with a *closed* gate: admitting against the
    /// half-loaded image would serve (and durably log) corrupt state.
    #[test]
    fn llr_p_lazy_load_failure_poisons_the_gate() {
        let (catalog, reg, storage) = setup();
        let reference = Arc::new(Database::new(catalog.clone()));
        for k in 0..64u64 {
            reference
                .seed_row(T, k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        pacman_wal::run_checkpoint(&reference, &storage, 1).unwrap();
        // Corrupt the chain behind recovery's back: delete one part the
        // tip manifest references.
        let manifest = pacman_wal::checkpoint::read_manifest(&storage)
            .unwrap()
            .unwrap();
        let (table, shard, disk) = manifest.parts[0];
        storage
            .disk(disk as usize)
            .delete(&pacman_wal::checkpoint::part_name(
                manifest.ts,
                table,
                shard as usize,
            ));
        storage
            .disk(0)
            .write_file("pepoch.log", &u64::MAX.to_le_bytes());

        let session = recover_online(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::LlrP,
                threads: 2,
            },
        )
        .unwrap();
        let admission = session.admission();
        let gate = Arc::clone(session.gate());
        let err = session.wait();
        assert!(err.is_err(), "missing part must fail the session");
        assert!(gate.is_failed());
        assert!(!admission.is_open());
        assert!(
            !admission.try_admit(
                ProcId::new(0),
                &pacman_sproc::params([Value::Int(1), Value::Int(1)])
            ),
            "a poisoned gate must not admit anything"
        );
    }

    /// A tip manifest referencing a shard outside the catalog must fail
    /// the lazy session *cleanly* — settled `Failed`, gate poisoned — not
    /// panic the session thread and leave waiters hanging.
    #[test]
    fn llr_p_corrupt_manifest_fails_cleanly() {
        let (catalog, reg, storage) = setup();
        let reference = Arc::new(Database::new(catalog.clone()));
        for k in 0..16u64 {
            reference
                .seed_row(T, k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        pacman_wal::run_checkpoint(&reference, &storage, 1).unwrap();
        let mut manifest = pacman_wal::checkpoint::read_manifest(&storage)
            .unwrap()
            .unwrap();
        manifest.parts.push((0, 999, 0)); // shard outside the catalog
        storage
            .disk(0)
            .write_file(pacman_wal::checkpoint::MANIFEST_FILE, &manifest.to_bytes());
        storage
            .disk(0)
            .write_file("pepoch.log", &u64::MAX.to_le_bytes());

        let session = recover_online(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::LlrP,
                threads: 2,
            },
        )
        .unwrap();
        let gate = Arc::clone(session.gate());
        assert!(session.wait().is_err(), "corrupt manifest must fail");
        assert!(gate.is_failed(), "gate must be poisoned, not left hanging");
    }

    /// Retention pinning: a settled-complete session pins nothing; a
    /// failed session leaks a permanent hold — the suspect state must
    /// never be checkpointed over (or have its log reclaimed).
    #[test]
    fn pin_retention_complete_vs_failed() {
        use pacman_wal::{Durability, DurabilityConfig, LogScheme};
        let (catalog, reg, storage) = setup();
        let dur_config = DurabilityConfig {
            scheme: LogScheme::Command,
            num_loggers: 1,
            epoch_interval: std::time::Duration::from_millis(2),
            batch_epochs: 4,
            checkpoint_interval: None,
            checkpoint_threads: 1,
            fsync: false,
            ..Default::default()
        };

        // Complete: once the session settles cleanly, pinning takes no
        // hold — checkpoints (and reclamation) run unimpeded.
        let session = recover_online(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::Clr,
                threads: 1,
            },
        )
        .unwrap();
        let t0 = std::time::Instant::now();
        while !session.is_settled() {
            assert!(t0.elapsed() < std::time::Duration::from_secs(5));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let (dur, _info) = Durability::reopen(
            Arc::clone(session.db()),
            storage.clone(),
            dur_config.clone(),
        );
        session.pin_retention_on(&dur);
        assert!(
            !dur.retention().checkpoints_held(),
            "a settled-complete session must not pin"
        );
        session.wait().unwrap();
        dur.shutdown();

        // Failed: a corrupt base image fails the session; pinning then
        // leaks a permanent recovery hold on the durability stack.
        let (catalog, reg, storage) = setup();
        let reference = Arc::new(Database::new(catalog.clone()));
        for k in 0..64u64 {
            reference
                .seed_row(T, k, Row::from([Value::Int(k as i64)]))
                .unwrap();
        }
        pacman_wal::run_checkpoint(&reference, &storage, 1).unwrap();
        let manifest = pacman_wal::checkpoint::read_manifest(&storage)
            .unwrap()
            .unwrap();
        let (table, shard, disk) = manifest.parts[0];
        storage
            .disk(disk as usize)
            .delete(&pacman_wal::checkpoint::part_name(
                manifest.ts,
                table,
                shard as usize,
            ));
        storage
            .disk(0)
            .write_file("pepoch.log", &u64::MAX.to_le_bytes());
        let session = recover_online(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::LlrP,
                threads: 2,
            },
        )
        .unwrap();
        // Settle first (deterministic), then pin: the Failed arm leaks.
        let fresh = Arc::new(Database::new(catalog.clone()));
        let (dur, _info) = Durability::reopen(fresh, storage.clone(), dur_config);
        let err = {
            let t0 = std::time::Instant::now();
            while !session.is_settled() {
                assert!(t0.elapsed() < std::time::Duration::from_secs(5));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            session.pin_retention_on(&dur);
            session.wait()
        };
        assert!(err.is_err(), "missing part must fail the session");
        assert!(
            dur.retention().checkpoints_held(),
            "a failed session must leave a permanent recovery hold"
        );
        dur.shutdown();
    }

    #[test]
    fn missing_everything_recovers_empty() {
        let (catalog, reg, storage) = setup();
        let out = recover(
            &storage,
            &catalog,
            &reg,
            &RecoveryConfig {
                scheme: RecoveryScheme::Clr,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(out.db.total_tuples(), 0);
        assert_eq!(out.report.txns, 0);
    }
}
