//! The raw tuple store used by physical-log recovery.
//!
//! PLR restores *records*, not indexes: checkpoint tuples land in a flat
//! per-table heap addressed through a hash-based "physical address table"
//! (our stand-in for page/slot ids), and the B-tree indexes are rebuilt
//! lazily at the end of log recovery (§2.3, §6.2.1).

use pacman_common::{Key, TableId};
use pacman_engine::{Database, TupleChain};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const SHARDS: usize = 64;

/// Per-table hash store of tuple chains (no ordering).
#[derive(Debug)]
pub struct RawTable {
    shards: Vec<Mutex<HashMap<Key, Arc<TupleChain>>>>,
}

impl RawTable {
    fn new() -> Self {
        RawTable {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize & (SHARDS - 1)
    }

    /// Fetch or create the chain for `key`.
    pub fn get_or_create(&self, key: Key) -> Arc<TupleChain> {
        let mut shard = self.shards[self.shard_of(key)].lock();
        Arc::clone(
            shard
                .entry(key)
                .or_insert_with(|| Arc::new(TupleChain::new())),
        )
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the shard contents (index rebuild).
    pub fn drain_shard(&self, shard: usize) -> Vec<(Key, Arc<TupleChain>)> {
        self.shards[shard].lock().drain().collect()
    }

    /// Number of internal shards (parallel rebuild units).
    pub fn num_shards(&self) -> usize {
        SHARDS
    }
}

/// All tables of the recovering database, unindexed.
#[derive(Debug)]
pub struct RawStore {
    tables: Vec<RawTable>,
}

impl RawStore {
    /// One raw table per catalog table.
    pub fn new(num_tables: usize) -> Self {
        RawStore {
            tables: (0..num_tables).map(|_| RawTable::new()).collect(),
        }
    }

    /// Raw table accessor.
    pub fn table(&self, id: TableId) -> &RawTable {
        &self.tables[id.index()]
    }

    /// Number of tables (manifest validation).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total tuples across tables.
    pub fn total(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Rebuild the database indexes from the raw heaps — the "lazy index
    /// reconstruction" PLR performs at the end of log recovery. Parallel
    /// over (table, shard) units with `threads` workers.
    pub fn build_indexes(&self, db: &Database, threads: usize) {
        let mut units: Vec<(usize, usize)> = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for s in 0..t.num_shards() {
                units.push((ti, s));
            }
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|_| loop {
                    let u = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if u >= units.len() {
                        return;
                    }
                    let (ti, s) = units[u];
                    let table = db
                        .table(TableId::new(ti as u32))
                        .expect("catalog tables match raw store");
                    for (key, chain) in self.tables[ti].drain_shard(s) {
                        table.put_chain(key, chain);
                    }
                });
            }
        })
        .expect("index rebuild scope");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Row, Value};
    use pacman_engine::Catalog;

    #[test]
    fn raw_store_roundtrip_through_index_build() {
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        let raw = RawStore::new(1);
        for k in 0..500u64 {
            raw.table(TableId::new(0)).get_or_create(k).install_lww(
                1,
                Some(std::sync::Arc::new(Row::from([Value::Int(k as i64)]))),
            );
        }
        assert_eq!(raw.total(), 500);
        raw.build_indexes(&db, 4);
        assert_eq!(db.table(TableId::new(0)).unwrap().num_keys(), 500);
        let chain = db.table(TableId::new(0)).unwrap().get(123).unwrap();
        assert_eq!(chain.newest().1.unwrap().col(0), &Value::Int(123));
        assert_eq!(raw.total(), 0, "drained into the index");
    }

    #[test]
    fn get_or_create_shares_chains() {
        let raw = RawStore::new(1);
        let a = raw.table(TableId::new(0)).get_or_create(9);
        let b = raw.table(TableId::new(0)).get_or_create(9);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
