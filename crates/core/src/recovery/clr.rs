//! CLR: conventional command log recovery (§6.2).
//!
//! Log files are reloaded into memory in parallel, but the lost committed
//! transactions are then re-executed *in sequence by a single thread* —
//! the paper's motivating bottleneck ("CLR took over 4,200 seconds … to
//! complete the log recovery", §6.2.2).

use crate::metrics::RecoveryMetrics;
use crate::recovery::plr::LogRecovery;
use crate::recovery::{read_merged_batch, LogInventory};
use crate::runtime::exec::replay_record_serial;
use pacman_common::{Result, Timestamp};
use pacman_engine::Database;
use pacman_sproc::ProcRegistry;
use pacman_storage::StorageSet;
use std::time::Instant;

/// CLR log recovery.
#[allow(clippy::too_many_arguments)]
pub fn recover_log(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Database,
    registry: &ProcRegistry,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &RecoveryMetrics,
) -> Result<LogRecovery> {
    recover_log_online(
        storage, inventory, db, registry, pepoch, after_ts, metrics, None,
    )
}

/// [`recover_log`] publishing batch watermarks to an online-recovery
/// gate. CLR replays strictly serially, so every block advances together:
/// after batch `k`, every partition's watermark is `k + 1` (on-demand
/// priority has nothing to reorder on a single thread).
#[allow(clippy::too_many_arguments)]
pub fn recover_log_online(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Database,
    registry: &ProcRegistry,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &RecoveryMetrics,
    gate: Option<&pacman_engine::RecoveryGate>,
) -> Result<LogRecovery> {
    let t0 = Instant::now();
    let mut reload = std::time::Duration::ZERO;
    let mut max_ts = 0u64;
    let mut txns = 0u64;
    for (bi, batch) in inventory.batches().into_iter().enumerate() {
        let tr = Instant::now();
        let merged = read_merged_batch(storage, inventory, batch, pepoch, after_ts)?;
        reload += tr.elapsed();
        metrics.add_load(tr.elapsed());
        let tw = Instant::now();
        for rec in &merged.records {
            replay_record_serial(db, registry, rec)?;
            max_ts = max_ts.max(rec.ts);
            txns += 1;
            metrics.count_txn();
        }
        metrics.add_work(tw.elapsed());
        if let Some(g) = gate {
            for p in 0..g.num_partitions() {
                g.publish(p, bi as u64 + 1);
            }
        }
    }
    Ok(LogRecovery {
        reload,
        total: t0.elapsed(),
        max_ts,
        txns,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::clock::epoch_floor;
    use pacman_common::{Encoder, ProcId, Row, TableId, Value};
    use pacman_engine::Catalog;
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_wal::{LogPayload, TxnLogRecord};

    const T: TableId = TableId::new(0);

    #[test]
    fn clr_reexecutes_in_commit_order() {
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "SetAdd", 2);
        let v = b.read(T, Expr::param(0), 0);
        b.write(
            T,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();

        let storage = StorageSet::for_tests();
        let mut buf = Vec::new();
        for (i, amt) in [(1u64, 5i64), (2, 7), (3, -2)] {
            TxnLogRecord {
                ts: epoch_floor(1) | i,
                payload: LogPayload::Command {
                    proc: ProcId::new(0),
                    params: vec![Value::Int(1), Value::Int(amt)].into(),
                },
            }
            .encode(&mut buf);
        }
        storage.disk(0).append("log/00/0000000000", &buf);

        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        db.seed_row(T, 1, Row::from([Value::Int(100)])).unwrap();
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        let r = recover_log(&storage, &inv, &db, &reg, 5, 0, &m).unwrap();
        assert_eq!(r.txns, 3);
        let chain = db.table(T).unwrap().get(1).unwrap();
        assert_eq!(chain.newest().1.unwrap().col(0), &Value::Int(110));
        assert_eq!(m.txns(), 3);
    }
}
