//! LLR-P: the parallel logical log recovery adapted from PACMAN (§4.5,
//! §6.2).
//!
//! Every log entry is treated as a write-only transaction: each batch's
//! writes are shuffled by (table, primary key) onto the recovery threads,
//! then reinstalled latch-free with last-writer-wins. A key is owned by
//! exactly one thread, and each thread applies its stream in commitment
//! order, so no synchronization is needed — the property that lets LLR-P
//! outperform latched LLR (Fig. 16).

use crate::metrics::RecoveryMetrics;
use crate::recovery::plr::LogRecovery;
use crate::recovery::{read_merged_batch_view, LogInventory};
use pacman_common::{Error, Result, Timestamp};
use pacman_engine::{Database, WriteRecord};
use pacman_storage::StorageSet;
use std::time::Instant;

/// LLR-P log recovery.
#[allow(clippy::too_many_arguments)]
pub fn recover_log(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Database,
    threads: usize,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &RecoveryMetrics,
) -> Result<LogRecovery> {
    let threads = threads.max(1);
    let t0 = Instant::now();
    let reload_ns = std::sync::atomic::AtomicU64::new(0);
    let stats = parking_lot::Mutex::new((0u64, 0u64)); // (max_ts, txns)
    let err = parking_lot::Mutex::new(None::<Error>);

    // Producer: reload + merge + shuffle the next batch while consumers
    // reinstall the current one (batch pipelining adopted from PACMAN).
    let (tx, rx) = crossbeam::channel::bounded::<Vec<Vec<(Timestamp, WriteRecord)>>>(2);
    crossbeam::thread::scope(|scope| {
        {
            let err = &err;
            let stats = &stats;
            let reload_ns = &reload_ns;
            let metrics = &metrics;
            scope.spawn(move |_| {
                for batch in inventory.batches() {
                    let tr = Instant::now();
                    let merged =
                        match read_merged_batch_view(storage, inventory, batch, pepoch, after_ts) {
                            Ok(m) => m,
                            Err(e) => {
                                *err.lock() = Some(e);
                                return;
                            }
                        };
                    reload_ns.fetch_add(
                        tr.elapsed().as_nanos() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    metrics.add_load(tr.elapsed());
                    if merged.is_empty() {
                        continue;
                    }
                    // Shuffle writes by (table, key) onto the threads —
                    // decoded straight off the borrowed batch spans, so
                    // each write is materialized exactly once, already
                    // owned by its destination partition.
                    let tp = Instant::now();
                    let mut partitions: Vec<Vec<(Timestamp, WriteRecord)>> =
                        (0..threads).map(|_| Vec::new()).collect();
                    {
                        let mut st = stats.lock();
                        for rec in merged.iter() {
                            let Some(writes) = rec.writes() else {
                                *err.lock() = Some(Error::Corrupt(
                                    "LLR-P requires tuple-level log records".into(),
                                ));
                                return;
                            };
                            st.0 = st.0.max(rec.ts());
                            st.1 += 1;
                            for w in writes {
                                let h = (w.key ^ ((w.table.0 as u64) << 32))
                                    .wrapping_mul(0x9E3779B97F4A7C15)
                                    >> 32;
                                partitions[h as usize % threads].push((rec.ts(), w));
                            }
                        }
                    }
                    metrics.add_param(tp.elapsed());
                    if tx.send(partitions).is_err() {
                        return;
                    }
                }
                drop(tx);
            });
        }

        // Consumers: one persistent worker per partition lane, latch-free.
        let lanes: Vec<crossbeam::channel::Sender<Vec<(Timestamp, WriteRecord)>>> = (0..threads)
            .map(|_| {
                let (ltx, lrx) = crossbeam::channel::bounded::<Vec<(Timestamp, WriteRecord)>>(2);
                let err = &err;
                let metrics = &metrics;
                scope.spawn(move |_| {
                    for part in lrx.iter() {
                        let t0 = Instant::now();
                        for (ts, w) in part {
                            match db.table(w.table) {
                                Ok(table) => {
                                    // `w` is owned here: the after-image
                                    // moves into the version chain.
                                    table.install_lww(w.key, ts, w.after);
                                }
                                Err(e) => {
                                    let mut s = err.lock();
                                    if s.is_none() {
                                        *s = Some(e);
                                    }
                                    return;
                                }
                            }
                        }
                        metrics.add_work(t0.elapsed());
                    }
                });
                ltx
            })
            .collect();

        // Distributor: fan each batch's partitions out to the lanes. Lane
        // order preserves per-key commitment order (each key maps to one
        // lane; batches are sent in order).
        for partitions in rx.iter() {
            for (lane, part) in lanes.iter().zip(partitions) {
                if !part.is_empty() && lane.send(part).is_err() {
                    break;
                }
            }
        }
        drop(lanes);
    })
    .expect("llr-p scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }

    let (max_ts, txns) = stats.into_inner();
    Ok(LogRecovery {
        reload: std::time::Duration::from_nanos(
            reload_ns.load(std::sync::atomic::Ordering::Relaxed),
        ),
        total: t0.elapsed(),
        max_ts,
        txns,
        ..Default::default()
    })
}

/// Online LLR-P: per-(table, shard) replay with admission watermarks.
///
/// The offline path partitions writes by key hash onto thread-private
/// lanes; the online path partitions by *index shard* instead — the unit
/// the [`RecoveryGate`] tracks — so a waiting transaction's cold shards
/// can be redone on demand:
///
/// * a loader streams batches in order and appends each batch's writes to
///   per-shard queues, bumping the loaded-batch frontier;
/// * workers drain whole shard queues (shards with blocked admissions
///   first), install latch-free, and publish the shard's applied-batch
///   watermark;
/// * a shard's stream is applied by one worker at a time (the queue lock
///   is held across the install), preserving per-key commitment order.
#[allow(clippy::too_many_arguments)]
pub fn recover_log_online(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &std::sync::Arc<Database>,
    gate: &std::sync::Arc<pacman_engine::RecoveryGate>,
    map: &crate::recovery::gate::ShardMap,
    threads: usize,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &RecoveryMetrics,
) -> Result<LogRecovery> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let threads = threads.max(1);
    let t0 = Instant::now();
    let batches = inventory.batches();
    let reload_ns = AtomicU64::new(0);
    let stats = parking_lot::Mutex::new((0u64, 0u64)); // (max_ts, txns)
    let err = parking_lot::Mutex::new(None::<Error>);

    let shards = crate::recovery::shard_apply::lanes(map.total());
    let loaded = AtomicU64::new(0);
    let loader_done = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        {
            let err = &err;
            let stats = &stats;
            let reload_ns = &reload_ns;
            let metrics = &metrics;
            let shards = &shards;
            let loaded = &loaded;
            let loader_done = &loader_done;
            let batches = &batches;
            scope.spawn(move |_| {
                let mut groups: Vec<Vec<(Timestamp, WriteRecord)>> =
                    (0..shards.len()).map(|_| Vec::new()).collect();
                for (bi, &batch) in batches.iter().enumerate() {
                    let tr = Instant::now();
                    let merged =
                        match read_merged_batch_view(storage, inventory, batch, pepoch, after_ts) {
                            Ok(m) => m,
                            Err(e) => {
                                *err.lock() = Some(e);
                                break;
                            }
                        };
                    reload_ns.fetch_add(tr.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    metrics.add_load(tr.elapsed());
                    {
                        let mut st = stats.lock();
                        for rec in merged.iter() {
                            let Some(writes) = rec.writes() else {
                                *err.lock() = Some(Error::Corrupt(
                                    "LLR-P requires tuple-level log records".into(),
                                ));
                                break;
                            };
                            st.0 = st.0.max(rec.ts());
                            st.1 += 1;
                            for w in writes {
                                match map.partition(db, w.table, w.key) {
                                    Ok(p) => groups[p].push((rec.ts(), w)),
                                    Err(e) => {
                                        *err.lock() = Some(e);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    if err.lock().is_some() {
                        break;
                    }
                    for (p, g) in groups.iter_mut().enumerate() {
                        if !g.is_empty() {
                            shards[p].queue.lock().append(g);
                        }
                    }
                    loaded.store(bi as u64 + 1, Ordering::Release);
                }
                loader_done.store(true, Ordering::Release);
            });
        }

        for worker in 0..threads {
            let err = &err;
            let metrics = &metrics;
            let shards = &shards;
            let loaded = &loaded;
            let loader_done = &loader_done;
            scope.spawn(move |_| {
                crate::recovery::shard_apply::run_shard_worker(
                    shards,
                    db,
                    gate,
                    metrics,
                    err,
                    || loaded.load(Ordering::Acquire),
                    || loader_done.load(Ordering::Acquire),
                    worker,
                );
            });
        }
    })
    .expect("llr-p online scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }

    let (max_ts, txns) = stats.into_inner();
    Ok(LogRecovery {
        reload: std::time::Duration::from_nanos(
            reload_ns.load(std::sync::atomic::Ordering::Relaxed),
        ),
        total: t0.elapsed(),
        max_ts,
        txns,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::clock::epoch_floor;
    use pacman_common::{Encoder, Row, TableId, Value};
    use pacman_engine::{Catalog, WriteKind};
    use pacman_wal::{LogPayload, TxnLogRecord};

    fn logical(ts: u64, key: u64, val: i64) -> TxnLogRecord {
        TxnLogRecord {
            ts,
            payload: LogPayload::Writes {
                writes: vec![WriteRecord {
                    table: TableId::new(0),
                    key,
                    kind: WriteKind::Update,
                    after: Some(std::sync::Arc::new(Row::from([Value::Int(val)]))),
                    prev_ts: 0,
                }],
                physical: false,
                adhoc: false,
            },
        }
    }

    #[test]
    fn llr_p_applies_in_commit_order_per_key() {
        let storage = StorageSet::for_tests();
        // Two loggers' files for one batch, interleaved timestamps on the
        // same key: the merge must serialize them correctly.
        let mut a = Vec::new();
        logical(epoch_floor(1) | 1, 7, 10).encode(&mut a);
        logical(epoch_floor(1) | 3, 7, 30).encode(&mut a);
        storage.disk(0).append("log/00/0000000000", &a);
        let mut b = Vec::new();
        logical(epoch_floor(1) | 2, 7, 20).encode(&mut b);
        logical(epoch_floor(1) | 4, 8, 40).encode(&mut b);
        storage.disk(0).append("log/01/0000000000", &b);

        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        let r = recover_log(&storage, &inv, &db, 4, 5, 0, &m).unwrap();
        assert_eq!(r.txns, 4);
        let t = db.table(TableId::new(0)).unwrap();
        assert_eq!(
            t.get(7).unwrap().newest().1.unwrap().col(0),
            &Value::Int(30)
        );
        assert_eq!(
            t.get(8).unwrap().newest().1.unwrap().col(0),
            &Value::Int(40)
        );
        // Single-version recovered state.
        assert_eq!(t.get(7).unwrap().num_versions(), 1);
    }

    #[test]
    fn llr_p_online_applies_and_publishes_watermarks() {
        let storage = StorageSet::for_tests();
        let mut a = Vec::new();
        logical(epoch_floor(1) | 1, 7, 10).encode(&mut a);
        logical(epoch_floor(1) | 3, 7, 30).encode(&mut a);
        storage.disk(0).append("log/00/0000000000", &a);
        let mut b = Vec::new();
        logical(epoch_floor(2) | 5, 8, 40).encode(&mut b);
        storage.disk(0).append("log/00/0000000001", &b);

        let mut c = Catalog::new();
        c.add_table_sharded("t", 1, 2);
        let db = std::sync::Arc::new(Database::new(c));
        let map = crate::recovery::gate::ShardMap::new(&db);
        let gate = pacman_engine::RecoveryGate::new(map.total());
        gate.set_total_batches(2);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        let r = recover_log_online(&storage, &inv, &db, &gate, &map, 3, u64::MAX, 0, &m).unwrap();
        assert_eq!(r.txns, 3);
        let t = db.table(TableId::new(0)).unwrap();
        assert_eq!(
            t.get(7).unwrap().newest().1.unwrap().col(0),
            &Value::Int(30)
        );
        assert_eq!(
            t.get(8).unwrap().newest().1.unwrap().col(0),
            &Value::Int(40)
        );
        // Every shard partition reached the final watermark.
        for p in 0..gate.num_partitions() {
            assert!(gate.is_ready(p), "partition {p} never completed");
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        assert!(gate.admit(&[0, gate.num_partitions() - 1], &stop));
    }

    #[test]
    fn llr_p_online_rejects_command_records() {
        let storage = StorageSet::for_tests();
        let rec = TxnLogRecord {
            ts: epoch_floor(1) | 1,
            payload: LogPayload::Command {
                proc: pacman_common::ProcId::new(0),
                params: vec![].into(),
            },
        };
        storage.disk(0).append("log/00/0000000000", &rec.to_bytes());
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = std::sync::Arc::new(Database::new(c));
        let map = crate::recovery::gate::ShardMap::new(&db);
        let gate = pacman_engine::RecoveryGate::new(map.total());
        gate.set_total_batches(1);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        assert!(recover_log_online(&storage, &inv, &db, &gate, &map, 2, u64::MAX, 0, &m).is_err());
    }

    #[test]
    fn llr_p_rejects_command_records() {
        let storage = StorageSet::for_tests();
        let rec = TxnLogRecord {
            ts: epoch_floor(1) | 1,
            payload: LogPayload::Command {
                proc: pacman_common::ProcId::new(0),
                params: vec![].into(),
            },
        };
        storage.disk(0).append("log/00/0000000000", &rec.to_bytes());
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        assert!(recover_log(&storage, &inv, &db, 2, 5, 0, &m).is_err());
    }
}
