//! Footprint mapping for online recovery admission.
//!
//! The engine-level [`RecoveryGate`] tracks replay watermarks over opaque
//! *partition* indices. This module owns the semantics of those indices
//! and the mapping from a transaction invocation to the partitions it can
//! touch — its **static footprint**:
//!
//! * **command schemes** (CLR / CLR-P / ALR-P) replay by re-executing
//!   procedure pieces block by block, so a partition is one global
//!   dependency-graph block. A procedure's footprint is the blocks of its
//!   piece templates plus their ancestors (a block only reaches its final
//!   state once every upstream block has, so flagging ancestors lets the
//!   replay workers pull the whole chain forward);
//! * **tuple schemes** (LLR-P) replay by reinstalling after-images, so a
//!   partition is one (table, index-shard) pair. A procedure's footprint
//!   resolves each op's key against the invocation parameters where the
//!   key is parameter-computable; ops whose keys depend on upstream reads
//!   or loop indices fall back to every shard of the op's table.
//!
//! [`GatedAdmission`] packages a gate plus a map behind the engine's
//! [`AdmissionControl`] trait, which is what transaction drivers consume.

use crate::static_analysis::GlobalGraph;
use pacman_common::{BlockId, Key, ProcId, Result, TableId};
use pacman_engine::{AdmissionControl, Database, RecoveryGate};
use pacman_sproc::{EvalCtx, Params, ProcRegistry, ProcedureDef};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Dense numbering of every (table, shard) pair of a database — the
/// partition space tuple-level online replay publishes watermarks over.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// Partition index of table `t`'s shard 0.
    offsets: Vec<usize>,
    total: usize,
}

impl ShardMap {
    /// Build the map for `db`'s catalog.
    pub fn new(db: &Database) -> ShardMap {
        let mut offsets = Vec::with_capacity(db.tables().len());
        let mut total = 0;
        for t in db.tables() {
            offsets.push(total);
            total += t.num_shards();
        }
        ShardMap { offsets, total }
    }

    /// Total number of partitions.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Partition of `(table, key)`.
    pub fn partition(&self, db: &Database, table: TableId, key: Key) -> Result<usize> {
        let t = db.table(table)?;
        Ok(self.offsets[table.index()] + t.shard_index(key))
    }

    /// Partition of `(table, shard-index)` — how checkpoint parts (which
    /// name shards directly) map into the same numbering.
    pub fn shard_partition(&self, table_index: usize, shard: usize) -> usize {
        self.offsets[table_index] + shard
    }

    /// All partitions of one table.
    pub fn table_partitions(
        &self,
        db: &Database,
        table: TableId,
    ) -> Result<std::ops::Range<usize>> {
        let t = db.table(table)?;
        let base = self.offsets[table.index()];
        Ok(base..base + t.num_shards())
    }
}

/// One op's contribution to a tuple-scheme static footprint.
#[derive(Clone, Debug)]
enum ShardFp {
    /// Key computable from the parameters alone: op index to evaluate.
    Exact { table: TableId, op: usize },
    /// Key depends on runtime state: every shard of the table.
    Whole(TableId),
}

/// Invocation-to-partition mapping for one recovery scheme.
pub struct GateMap {
    kind: MapKind,
}

enum MapKind {
    /// Command schemes: per-procedure block sets (ancestors included).
    Blocks {
        /// Footprints indexed by `ProcId::index()`.
        footprints: Vec<Vec<usize>>,
    },
    /// Tuple schemes: per-procedure shard resolvers.
    Shards {
        /// The database whose sharding defines the partitions.
        db: Arc<Database>,
        /// The partition numbering.
        map: ShardMap,
        /// Procedures indexed by `ProcId::index()` (`None` = id gap).
        procs: Vec<Option<Arc<ProcedureDef>>>,
        /// Static per-op resolvers, same indexing.
        footprints: Vec<Vec<ShardFp>>,
    },
}

impl GateMap {
    /// Build the command-scheme (per-block) map.
    pub fn blocks(gdg: &GlobalGraph, registry: &ProcRegistry) -> GateMap {
        let max_id = registry
            .all()
            .iter()
            .map(|p| p.id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut footprints = vec![Vec::new(); max_id];
        for def in registry.all() {
            let mut blocks: Vec<usize> = gdg
                .templates_for(def.id)
                .iter()
                .map(|t| t.block.index())
                .collect();
            // Ancestor closure: a block is only final once its upstream
            // blocks are, and prioritizing the ancestors is what makes
            // on-demand redo actually pull the chain forward.
            for b in 0..gdg.num_blocks() {
                if blocks.contains(&b) {
                    continue;
                }
                let bid = BlockId::new(b as u32);
                if blocks
                    .iter()
                    .any(|&t| gdg.is_ancestor(bid, BlockId::new(t as u32)))
                {
                    blocks.push(b);
                }
            }
            blocks.sort_unstable();
            blocks.dedup();
            footprints[def.id.index()] = blocks;
        }
        GateMap {
            kind: MapKind::Blocks { footprints },
        }
    }

    /// Build the tuple-scheme (per-table-shard) map over an existing
    /// partition numbering (the same `ShardMap` the replay publishes
    /// watermarks through — one numbering, one source of truth).
    pub fn shards(db: Arc<Database>, map: ShardMap, registry: &ProcRegistry) -> GateMap {
        let max_id = registry
            .all()
            .iter()
            .map(|p| p.id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut procs: Vec<Option<Arc<ProcedureDef>>> = vec![None; max_id];
        let mut footprints = vec![Vec::new(); max_id];
        for def in registry.all() {
            let mut fp = Vec::with_capacity(def.ops.len());
            for (oi, op) in def.ops.iter().enumerate() {
                let mut vars = Vec::new();
                op.key.collect_vars(&mut vars);
                if vars.is_empty() && !op.key.uses_loop() {
                    fp.push(ShardFp::Exact {
                        table: op.table,
                        op: oi,
                    });
                } else {
                    fp.push(ShardFp::Whole(op.table));
                }
            }
            footprints[def.id.index()] = fp;
            procs[def.id.index()] = Some(Arc::clone(def));
        }
        GateMap {
            kind: MapKind::Shards {
                db,
                map,
                procs,
                footprints,
            },
        }
    }

    /// Whether this map's partitions double as checkpoint shards — true
    /// for the tuple scheme, where lazy checkpoint reload publishes
    /// residency over the same `(table, shard)` numbering, so admission
    /// must check the gate's residency plane with the same footprint.
    pub fn tracks_shard_residency(&self) -> bool {
        matches!(self.kind, MapKind::Shards { .. })
    }

    /// The static footprint of `proc(params)`, as partition indices.
    pub fn footprint(&self, proc: ProcId, params: &Params) -> Vec<usize> {
        match &self.kind {
            MapKind::Blocks { footprints } => {
                footprints.get(proc.index()).cloned().unwrap_or_default()
            }
            MapKind::Shards {
                db,
                map,
                procs,
                footprints,
            } => {
                let (Some(fp), Some(Some(def))) =
                    (footprints.get(proc.index()), procs.get(proc.index()))
                else {
                    return Vec::new();
                };
                let ctx = EvalCtx::of_params(params);
                let mut out = Vec::new();
                for entry in fp {
                    match entry {
                        ShardFp::Exact { table, op } => {
                            match def.ops[*op].key.eval_key(&ctx) {
                                Ok(key) => {
                                    if let Ok(p) = map.partition(db, *table, key) {
                                        out.push(p);
                                    }
                                }
                                Err(_) => {
                                    // Parameter shape surprised us (e.g. a
                                    // list param): degrade to the table.
                                    if let Ok(r) = map.table_partitions(db, *table) {
                                        out.extend(r);
                                    }
                                }
                            }
                        }
                        ShardFp::Whole(table) => {
                            if let Ok(r) = map.table_partitions(db, *table) {
                                out.extend(r);
                            }
                        }
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }
}

/// A [`RecoveryGate`] plus the scheme's [`GateMap`], implementing the
/// engine's [`AdmissionControl`]: what a transaction driver holds while an
/// online recovery session replays in the background.
pub struct GatedAdmission {
    gate: Arc<RecoveryGate>,
    map: GateMap,
}

impl GatedAdmission {
    /// Package a gate and its map.
    pub fn new(gate: Arc<RecoveryGate>, map: GateMap) -> Arc<Self> {
        Arc::new(GatedAdmission { gate, map })
    }

    /// The underlying gate.
    pub fn gate(&self) -> &Arc<RecoveryGate> {
        &self.gate
    }

    /// Resolve a footprint without waiting (introspection / tests).
    pub fn footprint(&self, proc: ProcId, params: &Params) -> Vec<usize> {
        self.map.footprint(proc, params)
    }
}

impl GatedAdmission {
    /// The footprint's checkpoint-shard view: identical to the replay
    /// footprint for the tuple scheme (one numbering for both planes),
    /// empty for command schemes (their base image loads eagerly before
    /// the session goes live).
    fn shard_view<'a>(&self, fp: &'a [usize]) -> &'a [usize] {
        if self.map.tracks_shard_residency() {
            fp
        } else {
            &[]
        }
    }
}

impl AdmissionControl for GatedAdmission {
    fn admit(&self, proc: ProcId, params: &Params, give_up: &AtomicBool) -> bool {
        if self.gate.is_complete() {
            return true;
        }
        let fp = self.map.footprint(proc, params);
        self.gate.admit_with(&fp, self.shard_view(&fp), give_up)
    }

    fn try_admit(&self, proc: ProcId, params: &Params) -> bool {
        if self.gate.is_complete() {
            return true;
        }
        let fp = self.map.footprint(proc, params);
        self.gate.try_admit_with(&fp, self.shard_view(&fp))
    }

    fn request(&self, proc: ProcId, params: &Params) {
        if !self.gate.is_complete() {
            let fp = self.map.footprint(proc, params);
            self.gate.request_with(&fp, self.shard_view(&fp));
        }
    }

    fn is_open(&self) -> bool {
        self.gate.is_complete()
    }
}
