//! ALR-P: PACMAN-parallel recovery of adaptive hybrid logs.
//!
//! The adaptive logging scheme (`pacman_wal`'s `LogScheme::Adaptive`)
//! leaves a *mixed-format* log behind: command records for transactions
//! the cost model judged cheap to re-execute, proc-tagged logical records
//! for the expensive ones. ALR-P replays that mix with the same
//! partitioned dependency-graph schedule as CLR-P (§4): command records
//! instantiate procedure slices that re-execute through the sproc
//! interpreter, while logical records short-circuit re-execution and
//! install their after-images as write-only pieces dispatched to the
//! blocks owning the written tables (§4.5's ad-hoc unification). The
//! result combines command logging's small log with logical logging's
//! cheap replay exactly where each wins.

use crate::metrics::RecoveryMetrics;
use crate::recovery::plr::LogRecovery;
use crate::recovery::LogInventory;
use crate::runtime::ReplayMode;
use crate::static_analysis::GlobalGraph;
use pacman_common::{Result, Timestamp};
use pacman_engine::Database;
use pacman_sproc::ProcRegistry;
use pacman_storage::StorageSet;
use std::sync::Arc;

/// ALR-P log recovery: stream mixed-format batches through the PACMAN
/// schedule. [`crate::schedule::ExecutionSchedule`] already dispatches
/// every payload kind — command records into interpreter slices, logical
/// and proc-tagged records into write-only pieces — so ALR-P shares
/// CLR-P's loader/replay pipeline verbatim (one implementation, one place
/// to fix); the pipeline reports the command/logical mix either way.
#[allow(clippy::too_many_arguments)]
pub fn recover_log(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    registry: &ProcRegistry,
    threads: usize,
    mode: ReplayMode,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &Arc<RecoveryMetrics>,
) -> Result<LogRecovery> {
    crate::recovery::clr_p::recover_log(
        storage, inventory, db, gdg, registry, threads, mode, pepoch, after_ts, metrics,
    )
}

/// [`recover_log`] with an online-recovery gate (shares CLR-P's gated
/// pipeline: per-block watermarks, wanted-block priority).
#[allow(clippy::too_many_arguments)]
pub fn recover_log_online(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Arc<Database>,
    gdg: &Arc<GlobalGraph>,
    registry: &ProcRegistry,
    threads: usize,
    mode: ReplayMode,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &Arc<RecoveryMetrics>,
    gate: Option<Arc<pacman_engine::RecoveryGate>>,
) -> Result<LogRecovery> {
    crate::recovery::clr_p::recover_log_online(
        storage, inventory, db, gdg, registry, threads, mode, pepoch, after_ts, metrics, gate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::clock::epoch_floor;
    use pacman_common::{Encoder, ProcId, Row, TableId, Value};
    use pacman_engine::{Catalog, WriteKind, WriteRecord};
    use pacman_sproc::{Expr, ProcBuilder};
    use pacman_wal::{LogPayload, TxnLogRecord};

    const ACCT: TableId = TableId::new(0);
    const AUDIT: TableId = TableId::new(1);

    /// Two procedures: a cheap RMW on ACCT and a "heavy" audit updating
    /// AUDIT. The mixed log interleaves command records (cheap proc) with
    /// proc-tagged logical records (heavy proc).
    fn registry() -> ProcRegistry {
        let mut reg = ProcRegistry::new();
        let mut b = ProcBuilder::new(ProcId::new(0), "Inc", 2);
        let v = b.read(ACCT, Expr::param(0), 0);
        b.write(
            ACCT,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();
        let mut b = ProcBuilder::new(ProcId::new(1), "Audit", 2);
        let v = b.read(AUDIT, Expr::param(0), 0);
        b.write(
            AUDIT,
            Expr::param(0),
            0,
            Expr::add(Expr::var(v), Expr::param(1)),
        );
        reg.register(b.build().unwrap()).unwrap();
        reg
    }

    fn db() -> Arc<Database> {
        let mut c = Catalog::new();
        c.add_table("acct", 1);
        c.add_table("audit", 1);
        let db = Arc::new(Database::new(c));
        for k in 0..8u64 {
            db.seed_row(ACCT, k, Row::from([Value::Int(100)])).unwrap();
            db.seed_row(AUDIT, k, Row::from([Value::Int(0)])).unwrap();
        }
        db
    }

    fn mixed_log(storage: &StorageSet, n: u64, per_batch: u64) -> (u64, u64) {
        let mut buf = Vec::new();
        let mut batch = 0;
        let mut audit_totals = [0i64; 8];
        let (mut commands, mut logicals) = (0, 0);
        for i in 0..n {
            let ts = epoch_floor(1 + i / 4) | (i + 1);
            let k = i % 8;
            if i % 3 == 0 {
                // "Heavy" transaction: log the after-image directly.
                audit_totals[k as usize] += 5;
                TxnLogRecord {
                    ts,
                    payload: LogPayload::TaggedWrites {
                        proc: ProcId::new(1),
                        writes: vec![WriteRecord {
                            table: AUDIT,
                            key: k,
                            kind: WriteKind::Update,
                            after: Some(std::sync::Arc::new(Row::from([Value::Int(
                                audit_totals[k as usize],
                            )]))),
                            prev_ts: 0,
                        }],
                    },
                }
                .encode(&mut buf);
                logicals += 1;
            } else {
                TxnLogRecord {
                    ts,
                    payload: LogPayload::Command {
                        proc: ProcId::new(0),
                        params: vec![Value::Int(k as i64), Value::Int(1)].into(),
                    },
                }
                .encode(&mut buf);
                commands += 1;
            }
            if (i + 1) % per_batch == 0 {
                storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
                buf.clear();
                batch += 1;
            }
        }
        if !buf.is_empty() {
            storage.disk(0).append(&format!("log/00/{batch:010}"), &buf);
        }
        (commands, logicals)
    }

    fn run(mode: ReplayMode, threads: usize) -> (Arc<Database>, LogRecovery) {
        let reg = registry();
        let gdg = Arc::new(GlobalGraph::analyze(reg.all()).unwrap());
        let storage = StorageSet::for_tests();
        mixed_log(&storage, 48, 8);
        let db = db();
        let inv = LogInventory::scan(&storage);
        let m = Arc::new(RecoveryMetrics::new());
        let r = recover_log(
            &storage,
            &inv,
            &db,
            &gdg,
            &reg,
            threads,
            mode,
            u64::MAX,
            0,
            &m,
        )
        .unwrap();
        (db, r)
    }

    #[test]
    fn mixed_batches_replay_and_count_formats() {
        let (db, r) = run(ReplayMode::Pipelined, 4);
        assert_eq!(r.txns, 48);
        assert_eq!(r.replayed_commands, 32);
        assert_eq!(r.applied_writes, 16);
        // Commands re-executed: every key saw 4 increments of 1.
        let mut t = db.begin();
        assert_eq!(t.read(ACCT, 0).unwrap().col(0), &Value::Int(104));
        // Logical records short-circuited: after-images installed as-is.
        assert_eq!(t.read(AUDIT, 0).unwrap().col(0), &Value::Int(10));
    }

    #[test]
    fn all_modes_agree_on_mixed_logs() {
        let (db_ps, _) = run(ReplayMode::PureStatic, 4);
        let (db_sync, _) = run(ReplayMode::Synchronous, 4);
        let (db_pipe, _) = run(ReplayMode::Pipelined, 8);
        let f = db_ps.fingerprint();
        assert_eq!(f, db_sync.fingerprint());
        assert_eq!(f, db_pipe.fingerprint());
    }

    #[test]
    fn empty_inventory_is_trivial() {
        let reg = registry();
        let gdg = Arc::new(GlobalGraph::analyze(reg.all()).unwrap());
        let storage = StorageSet::for_tests();
        let db = db();
        let inv = LogInventory::scan(&storage);
        let m = Arc::new(RecoveryMetrics::new());
        let r = recover_log(
            &storage,
            &inv,
            &db,
            &gdg,
            &reg,
            2,
            ReplayMode::Pipelined,
            u64::MAX,
            0,
            &m,
        )
        .unwrap();
        assert_eq!(r.txns, 0);
    }
}
