//! Failure recovery: checkpoint restore + log replay for the five
//! evaluated schemes of §6.2 plus adaptive hybrid recovery (ALR-P).
//!
//! | Scheme | Log type | Parallelism | Latches | Recovered state |
//! |--------|----------|-------------|---------|-----------------|
//! | PLR    | physical | per-file, LWW | yes  | multi-version   |
//! | LLR    | logical  | per-file      | yes  | multi-version   |
//! | LLR-P  | logical  | key-partitioned (from PACMAN, §4.5) | no | single-version |
//! | CLR    | command  | single thread | no   | single-version  |
//! | CLR-P  | command  | **PACMAN**    | no   | single-version  |
//! | ALR-P  | mixed (command + logical) | **PACMAN** | no | single-version |
//!
//! ALR-P consumes the adaptive scheme's mixed log: command records
//! re-execute through the interpreter, logical records short-circuit into
//! write-only pieces (see `docs/RECOVERY.md` for when each scheme wins).

pub mod alr_p;
pub mod checkpoint;
pub mod clr;
pub mod clr_p;
pub mod gate;
pub mod llr;
pub mod llr_p;
pub mod manager;
pub mod plr;
pub mod raw;
pub(crate) mod shard_apply;

pub use gate::{GateMap, GatedAdmission, ShardMap};
pub use manager::{
    recover, recover_online, RecoveryConfig, RecoveryOutcome, RecoveryReport, RecoveryScheme,
    RecoverySession, SessionState,
};

use pacman_common::codec::Cursor;
use pacman_common::{Decoder, Result, Timestamp};
use pacman_storage::StorageSet;
use pacman_wal::TxnLogRecord;

/// One log file found on a device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogFile {
    /// Device index holding the file.
    pub disk: usize,
    /// File name (`log/<logger>/<batch>`).
    pub name: String,
    /// Batch index parsed from the name.
    pub batch: u64,
}

/// Inventory of all log files left on the devices by the crash.
#[derive(Clone, Debug, Default)]
pub struct LogInventory {
    /// Files sorted by (batch, disk, name).
    pub files: Vec<LogFile>,
}

impl LogInventory {
    /// Scan every device for log batch files.
    pub fn scan(storage: &StorageSet) -> LogInventory {
        let mut files = Vec::new();
        for (di, disk) in storage.disks().iter().enumerate() {
            for name in disk.list("log/") {
                if let Some(batch) = name.rsplit('/').next().and_then(|s| s.parse().ok()) {
                    files.push(LogFile {
                        disk: di,
                        name,
                        batch,
                    });
                }
            }
        }
        files.sort_by(|a, b| (a.batch, a.disk, &a.name).cmp(&(b.batch, b.disk, &b.name)));
        LogInventory { files }
    }

    /// Distinct batch indices, ascending.
    pub fn batches(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.files.iter().map(|f| f.batch).collect();
        v.dedup();
        v
    }

    /// Files belonging to one batch.
    pub fn files_for(&self, batch: u64) -> impl Iterator<Item = &LogFile> {
        self.files.iter().filter(move |f| f.batch == batch)
    }

    /// Total log bytes on the devices (metadata only, no I/O cost).
    pub fn total_bytes(&self, storage: &StorageSet) -> u64 {
        self.files
            .iter()
            .map(|f| storage.disk(f.disk).len(&f.name).unwrap_or(0) as u64)
            .sum()
    }
}

/// Decode the records of one file, filtering by the durability frontier and
/// the checkpoint watermark.
pub fn decode_records(bytes: &[u8], pepoch: u64, after_ts: Timestamp) -> Result<Vec<TxnLogRecord>> {
    let mut cur = Cursor::new(bytes);
    let mut out = Vec::new();
    while !cur.is_empty() {
        let rec = TxnLogRecord::decode(&mut cur)?;
        if rec.epoch() <= pepoch && rec.ts > after_ts {
            out.push(rec);
        }
    }
    Ok(out)
}

/// Read one batch merged across loggers in commitment order (command-log
/// recovery paths).
pub fn read_merged_batch(
    storage: &StorageSet,
    inventory: &LogInventory,
    batch: u64,
    pepoch: u64,
    after_ts: Timestamp,
) -> Result<pacman_wal::LogBatch> {
    Ok(read_merged_batch_view(storage, inventory, batch, pepoch, after_ts)?.to_batch())
}

/// [`read_merged_batch`] without decode-to-owned: the per-file read
/// buffers back borrowed [`pacman_wal::RecordView`]s, so replay copies
/// row bytes only at version-chain installation.
pub fn read_merged_batch_view(
    storage: &StorageSet,
    inventory: &LogInventory,
    batch: u64,
    pepoch: u64,
    after_ts: Timestamp,
) -> Result<pacman_wal::MergedBatchView> {
    let mut buffers = Vec::new();
    for f in inventory.files_for(batch) {
        match storage.disk(f.disk).read(&f.name) {
            Ok(b) => buffers.push(b),
            // An online session scans its inventory before logging resumes;
            // `Durability::reopen`'s ghost-tail truncation then deletes a
            // batch file only when *every* record in it sits past the pepoch
            // frontier — records this view filters out regardless. A file
            // that vanished in that window contributes nothing to replay.
            Err(pacman_common::Error::FileNotFound(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    pacman_wal::merged_view_from_buffers(batch, buffers, pepoch, after_ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Encoder, ProcId, Value};
    use pacman_storage::DiskConfig;
    use pacman_wal::LogPayload;

    fn cmd(ts: u64) -> TxnLogRecord {
        TxnLogRecord {
            ts,
            payload: LogPayload::Command {
                proc: ProcId::new(0),
                params: vec![Value::Int(ts as i64)].into(),
            },
        }
    }

    #[test]
    fn inventory_scans_all_disks() {
        let storage = StorageSet::identical(2, DiskConfig::unthrottled("t"));
        storage.disk(0).append("log/00/0000000001", b"x");
        storage.disk(1).append("log/01/0000000001", b"y");
        storage.disk(0).append("log/00/0000000003", b"z");
        storage.disk(0).append("pepoch.log", b"!");
        let inv = LogInventory::scan(&storage);
        assert_eq!(inv.files.len(), 3);
        assert_eq!(inv.batches(), vec![1, 3]);
        assert_eq!(inv.files_for(1).count(), 2);
        assert_eq!(inv.total_bytes(&storage), 3);
    }

    #[test]
    fn inventory_order_is_deterministic_regardless_of_listing_order() {
        // Replay schedules are derived from the inventory, so its order
        // must be a pure function of the file set: stable-sorted by
        // (batch, disk, name) no matter how the files landed on disk.
        let names: [(usize, &str); 6] = [
            (1, "log/01/0000000002"),
            (0, "log/00/0000000002"),
            (1, "log/01/0000000000"),
            (0, "log/00/0000000010"),
            (0, "log/01/0000000002"), // second logger stream on disk 0
            (1, "log/00/0000000000"),
        ];
        // Two storage sets populated in opposite orders.
        let a = StorageSet::identical(2, DiskConfig::unthrottled("a"));
        for (d, n) in names {
            a.disk(d).append(n, b"x");
        }
        let b = StorageSet::identical(2, DiskConfig::unthrottled("b"));
        for (d, n) in names.iter().rev() {
            b.disk(*d).append(n, b"x");
        }
        let ia = LogInventory::scan(&a);
        let ib = LogInventory::scan(&b);
        assert_eq!(ia.files, ib.files, "scan order depends on insertion order");
        let key = |f: &LogFile| (f.batch, f.disk, f.name.clone());
        let mut sorted = ia.files.clone();
        sorted.sort_by_key(key);
        assert_eq!(ia.files, sorted, "not sorted by (batch, disk, name)");
        assert_eq!(ia.batches(), vec![0, 2, 10]);
    }

    #[test]
    fn merged_batch_view_tolerates_file_deleted_after_scan() {
        // An online session's inventory races `Durability::reopen`: the
        // ghost-tail truncation may delete a batch file (only when every
        // record in it is past the pepoch frontier) between the scan and
        // the replay thread's read. The vanished file must read as empty,
        // not fail the session.
        use pacman_common::clock::epoch_floor;
        let storage = StorageSet::identical(2, DiskConfig::unthrottled("t"));
        let mut buf = Vec::new();
        cmd(epoch_floor(1) | 5).encode(&mut buf);
        storage.disk(0).append("log/00/0000000000", &buf);
        storage.disk(1).append("log/01/0000000000", b"");
        let inv = LogInventory::scan(&storage);
        assert_eq!(inv.files_for(0).count(), 2);
        storage.disk(1).delete("log/01/0000000000");
        let batch = read_merged_batch(&storage, &inv, 0, u64::MAX, 0).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].ts, epoch_floor(1) | 5);
    }

    #[test]
    fn decode_filters_frontier_and_watermark() {
        use pacman_common::clock::epoch_floor;
        let mut buf = Vec::new();
        cmd(epoch_floor(1) | 5).encode(&mut buf);
        cmd(epoch_floor(2) | 6).encode(&mut buf);
        cmd(epoch_floor(3) | 7).encode(&mut buf);
        let recs = decode_records(&buf, 2, epoch_floor(1) | 5).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts, epoch_floor(2) | 6);
    }
}
