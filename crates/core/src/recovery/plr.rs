//! PLR: physical log recovery (§6.2).
//!
//! The classic disk-based design: reload and replay log files with multiple
//! threads applying the last-writer-wins rule under per-tuple latches, then
//! rebuild all indexes in parallel at the end. Restored state is
//! multi-versioned.

use crate::metrics::RecoveryMetrics;
use crate::recovery::raw::RawStore;
use crate::recovery::{decode_records, LogInventory};
use bytes::Bytes;
use pacman_common::{Error, Result, Timestamp};
use pacman_engine::Database;
use pacman_storage::StorageSet;
use pacman_wal::LogPayload;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Timing result of a log-recovery stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogRecovery {
    /// Pure log file reloading (Fig. 14a).
    pub reload: Duration,
    /// Whole log-recovery stage (Fig. 14b).
    pub total: Duration,
    /// Largest replayed timestamp (clock resume point).
    pub max_ts: Timestamp,
    /// Records replayed.
    pub txns: u64,
    /// Command records re-executed through the interpreter (ALR-P/CLR).
    pub replayed_commands: u64,
    /// Tuple-level records applied as after-images (ALR-P/LLR paths).
    pub applied_writes: u64,
}

/// Phase A shared by the tuple-level schemes: read every log file into
/// memory in parallel (bandwidth-bound).
pub fn reload_files(
    storage: &StorageSet,
    inventory: &LogInventory,
    threads: usize,
) -> Result<Vec<Bytes>> {
    let n = inventory.files.len();
    let slots: Vec<parking_lot::Mutex<Option<Bytes>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let err = parking_lot::Mutex::new(None::<Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let f = &inventory.files[i];
                match storage.disk(f.disk).read(&f.name) {
                    Ok(b) => *slots[i].lock() = Some(b),
                    Err(e) => {
                        let mut s = err.lock();
                        if s.is_none() {
                            *s = Some(e);
                        }
                    }
                }
            });
        }
    })
    .expect("reload scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.into_inner().expect("loaded"))
        .collect())
}

/// PLR log recovery into the raw store, followed by parallel index
/// reconstruction into `db`.
#[allow(clippy::too_many_arguments)]
pub fn recover_log(
    storage: &StorageSet,
    inventory: &LogInventory,
    raw: &RawStore,
    db: &Database,
    threads: usize,
    latch: bool,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &RecoveryMetrics,
) -> Result<LogRecovery> {
    let t0 = Instant::now();
    let files = metrics.timed(RecoveryMetrics::add_load, || {
        reload_files(storage, inventory, threads)
    })?;
    let reload = t0.elapsed();

    let max_ts = AtomicU64::new(0);
    let txns = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let err = parking_lot::Mutex::new(None::<Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= files.len() {
                    return;
                }
                let records = match decode_records(&files[i], pepoch, after_ts) {
                    Ok(r) => r,
                    Err(e) => {
                        let mut s = err.lock();
                        if s.is_none() {
                            *s = Some(e);
                        }
                        return;
                    }
                };
                let t0 = Instant::now();
                for rec in records {
                    let LogPayload::Writes {
                        writes,
                        physical: true,
                        ..
                    } = &rec.payload
                    else {
                        let mut s = err.lock();
                        if s.is_none() {
                            *s = Some(Error::Corrupt("PLR requires physical log records".into()));
                        }
                        return;
                    };
                    for w in writes {
                        let chain = raw.table(w.table).get_or_create(w.key);
                        if latch {
                            chain.latch.lock();
                        }
                        chain.install_mv(rec.ts, w.after.clone());
                        if latch {
                            chain.latch.unlock();
                        }
                    }
                    max_ts.fetch_max(rec.ts, Ordering::Relaxed);
                    txns.fetch_add(1, Ordering::Relaxed);
                }
                metrics.add_work(t0.elapsed());
            });
        }
    })
    .expect("plr replay scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }

    // Lazy index reconstruction (part of log recovery for PLR, §2.3).
    metrics.timed(RecoveryMetrics::add_work, || {
        raw.build_indexes(db, threads);
    });

    Ok(LogRecovery {
        reload,
        total: t0.elapsed(),
        max_ts: max_ts.load(Ordering::Relaxed),
        txns: txns.load(Ordering::Relaxed),
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::{Encoder, Row, TableId, Value};
    use pacman_engine::{Catalog, WriteKind, WriteRecord};
    use pacman_wal::TxnLogRecord;

    fn phys(ts: u64, key: u64, val: i64) -> TxnLogRecord {
        TxnLogRecord {
            ts,
            payload: LogPayload::Writes {
                writes: vec![WriteRecord {
                    table: TableId::new(0),
                    key,
                    kind: WriteKind::Update,
                    after: Some(std::sync::Arc::new(Row::from([Value::Int(val)]))),
                    prev_ts: 0,
                }],
                physical: true,
                adhoc: false,
            },
        }
    }

    #[test]
    fn plr_replays_with_last_writer_wins() {
        let storage = StorageSet::for_tests();
        let mut buf = Vec::new();
        // Out-of-order timestamps in separate "files" — LWW must hold.
        phys(pacman_common::clock::epoch_floor(1) | 2, 7, 20).encode(&mut buf);
        storage.disk(0).append("log/00/0000000000", &buf);
        let mut buf2 = Vec::new();
        phys(pacman_common::clock::epoch_floor(1) | 1, 7, 10).encode(&mut buf2);
        storage.disk(0).append("log/01/0000000000", &buf2);

        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        let raw = RawStore::new(1);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        let r = recover_log(&storage, &inv, &raw, &db, 2, true, 10, 0, &m).unwrap();
        assert_eq!(r.txns, 2);
        let chain = db.table(TableId::new(0)).unwrap().get(7).unwrap();
        let (ts, row) = chain.newest();
        assert_eq!(ts, pacman_common::clock::epoch_floor(1) | 2);
        assert_eq!(row.unwrap().col(0), &Value::Int(20));
        // Multi-version: both restored versions retained.
        assert_eq!(chain.num_versions(), 2);
    }

    #[test]
    fn plr_rejects_command_logs() {
        let storage = StorageSet::for_tests();
        let rec = TxnLogRecord {
            ts: pacman_common::clock::epoch_floor(1) | 1,
            payload: LogPayload::Command {
                proc: pacman_common::ProcId::new(0),
                params: vec![].into(),
            },
        };
        storage.disk(0).append("log/00/0000000000", &rec.to_bytes());
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        let raw = RawStore::new(1);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        assert!(recover_log(&storage, &inv, &raw, &db, 1, true, 10, 0, &m).is_err());
    }
}
