//! LLR: SiloR-style logical log recovery (§6.2).
//!
//! Records and indexes are reconstructed simultaneously: every restored
//! write goes through the table's index (`get_or_create`) and appends a
//! version to the tuple's chain under its latch. Multi-versioning lets two
//! threads restore different versions of the same tuple concurrently — but
//! the latch remains the scalability ceiling (Figs. 14/15).

use crate::metrics::RecoveryMetrics;
use crate::recovery::plr::{reload_files, LogRecovery};
use crate::recovery::{decode_records, LogInventory};
use pacman_common::{Error, Result, Timestamp};
use pacman_engine::Database;
use pacman_storage::StorageSet;
use pacman_wal::LogPayload;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// LLR log recovery directly into the indexed tables.
#[allow(clippy::too_many_arguments)]
pub fn recover_log(
    storage: &StorageSet,
    inventory: &LogInventory,
    db: &Database,
    threads: usize,
    latch: bool,
    pepoch: u64,
    after_ts: Timestamp,
    metrics: &RecoveryMetrics,
) -> Result<LogRecovery> {
    let t0 = Instant::now();
    let files = metrics.timed(RecoveryMetrics::add_load, || {
        reload_files(storage, inventory, threads)
    })?;
    let reload = t0.elapsed();

    let max_ts = AtomicU64::new(0);
    let txns = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let err = parking_lot::Mutex::new(None::<Error>);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= files.len() {
                    return;
                }
                let records = match decode_records(&files[i], pepoch, after_ts) {
                    Ok(r) => r,
                    Err(e) => {
                        let mut s = err.lock();
                        if s.is_none() {
                            *s = Some(e);
                        }
                        return;
                    }
                };
                let t0 = Instant::now();
                for rec in records {
                    // Plain logical records and adaptive proc-tagged ones
                    // are both tuple-level; LLR accepts either (matching
                    // LLR-P on the same bytes).
                    let (LogPayload::Writes {
                        writes,
                        physical: false,
                        ..
                    }
                    | LogPayload::TaggedWrites { writes, .. }) = &rec.payload
                    else {
                        let mut s = err.lock();
                        if s.is_none() {
                            *s = Some(Error::Corrupt("LLR requires logical log records".into()));
                        }
                        return;
                    };
                    for w in writes {
                        let table = match db.table(w.table) {
                            Ok(t) => t,
                            Err(e) => {
                                let mut s = err.lock();
                                if s.is_none() {
                                    *s = Some(e);
                                }
                                return;
                            }
                        };
                        table.mark_dirty(w.key, rec.ts);
                        let chain = table.get_or_create(w.key);
                        if latch {
                            chain.latch.lock();
                        }
                        chain.install_mv(rec.ts, w.after.clone());
                        if latch {
                            chain.latch.unlock();
                        }
                    }
                    max_ts.fetch_max(rec.ts, Ordering::Relaxed);
                    txns.fetch_add(1, Ordering::Relaxed);
                }
                metrics.add_work(t0.elapsed());
            });
        }
    })
    .expect("llr replay scope");
    if let Some(e) = err.into_inner() {
        return Err(e);
    }

    Ok(LogRecovery {
        reload,
        total: t0.elapsed(),
        max_ts: max_ts.load(Ordering::Relaxed),
        txns: txns.load(Ordering::Relaxed),
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_common::clock::epoch_floor;
    use pacman_common::{Encoder, Row, TableId, Value};
    use pacman_engine::{Catalog, WriteKind, WriteRecord};
    use pacman_wal::TxnLogRecord;

    fn logical(ts: u64, key: u64, val: Option<i64>) -> TxnLogRecord {
        TxnLogRecord {
            ts,
            payload: LogPayload::Writes {
                writes: vec![WriteRecord {
                    table: TableId::new(0),
                    key,
                    kind: if val.is_some() {
                        WriteKind::Update
                    } else {
                        WriteKind::Delete
                    },
                    after: val.map(|v| std::sync::Arc::new(Row::from([Value::Int(v)]))),
                    prev_ts: 0,
                }],
                physical: false,
                adhoc: false,
            },
        }
    }

    #[test]
    fn llr_restores_versions_and_indexes_together() {
        let storage = StorageSet::for_tests();
        let mut buf = Vec::new();
        logical(epoch_floor(1) | 1, 3, Some(10)).encode(&mut buf);
        logical(epoch_floor(1) | 2, 3, Some(20)).encode(&mut buf);
        logical(epoch_floor(1) | 3, 4, None).encode(&mut buf);
        storage.disk(0).append("log/00/0000000000", &buf);

        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        db.seed_row(TableId::new(0), 4, Row::from([Value::Int(9)]))
            .unwrap();
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        let r = recover_log(&storage, &inv, &db, 2, true, 5, 0, &m).unwrap();
        assert_eq!(r.txns, 3);
        let chain = db.table(TableId::new(0)).unwrap().get(3).unwrap();
        assert_eq!(chain.num_versions(), 2, "multi-versioned restore");
        assert_eq!(chain.newest().1.unwrap().col(0), &Value::Int(20));
        // Key 4 deleted.
        assert!(db
            .table(TableId::new(0))
            .unwrap()
            .get(4)
            .unwrap()
            .newest()
            .1
            .is_none());
    }

    #[test]
    fn pepoch_frontier_is_respected() {
        let storage = StorageSet::for_tests();
        let mut buf = Vec::new();
        logical(epoch_floor(1) | 1, 3, Some(10)).encode(&mut buf);
        logical(epoch_floor(9) | 2, 3, Some(99)).encode(&mut buf); // not durable
        storage.disk(0).append("log/00/0000000000", &buf);
        let mut c = Catalog::new();
        c.add_table("t", 1);
        let db = Database::new(c);
        let inv = LogInventory::scan(&storage);
        let m = RecoveryMetrics::new();
        let r = recover_log(&storage, &inv, &db, 1, false, 1, 0, &m).unwrap();
        assert_eq!(r.txns, 1);
        let chain = db.table(TableId::new(0)).unwrap().get(3).unwrap();
        assert_eq!(chain.newest().1.unwrap().col(0), &Value::Int(10));
    }
}
