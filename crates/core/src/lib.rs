//! PACMAN: parallel failure recovery for command logging (SIGMOD 2017).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`static_analysis`] — compile-time decomposition of stored procedures
//!   into *slices* (local dependency graphs, Algorithm 1) and their
//!   integration into a *global dependency graph* of *blocks*
//!   (Algorithm 2), plus the transaction-chopping baseline of Fig. 18;
//! * [`schedule`] — turning a reloaded log batch into an execution schedule
//!   of *pieces* grouped into *piece-sets* (§4.2, Fig. 6);
//! * [`dynamic`] — recovery-time analysis: per-piece read/write sets from
//!   runtime parameters and the conflict-chain DAG that exposes
//!   fine-grained intra-batch parallelism (§4.3.1, Figs. 7-8);
//! * [`runtime`] — the recovery runtime: per-block worker groups sized by
//!   the estimated workload distribution, synchronous and pipelined batch
//!   execution (§4.3.2-4.4, Figs. 9-10);
//! * [`recovery`] — the five evaluated recovery schemes: PLR, LLR, LLR-P,
//!   CLR and CLR-P (= PACMAN), plus checkpoint recovery (§6.2);
//! * [`replication`] — hot-standby replication: continuous log shipping
//!   with live PACMAN apply and instant failover (promote = epoch drain);
//! * [`metrics`] — the time-breakdown instrumentation behind Fig. 20.

pub mod dynamic;
pub mod metrics;
pub mod recovery;
pub mod replication;
pub mod runtime;
pub mod schedule;
pub mod static_analysis;

pub use dynamic::PieceDag;
pub use metrics::{Breakdown, RecoveryMetrics};
pub use recovery::{RecoveryConfig, RecoveryOutcome, RecoveryReport, RecoveryScheme};
pub use replication::{PromotedPrimary, ReplicationStats, Standby, StandbyConfig, StandbyState};
pub use runtime::ReplayMode;
pub use schedule::{ExecutionSchedule, Piece, PieceSet};
pub use static_analysis::{ChoppingGraph, GlobalGraph, LocalGraph};
