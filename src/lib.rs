//! Umbrella crate for the PACMAN reproduction workspace.
//!
//! Re-exports the member crates under one roof so the examples and
//! integration tests read naturally. See `README.md` for the architecture
//! overview, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md`
//! for paper-vs-measured results.

pub use pacman_common as common;
pub use pacman_core as core;
pub use pacman_engine as engine;
pub use pacman_sproc as sproc;
pub use pacman_storage as storage;
pub use pacman_wal as wal;
pub use pacman_workloads as workloads;

/// End-to-end convenience: build a database + durability stack for a
/// workload, run it for a while, crash, and recover with a chosen scheme.
/// Used by the examples; the figure harnesses use the pieces directly.
pub mod harness {
    use pacman_core::recovery::{recover, RecoveryConfig, RecoveryOutcome};
    use pacman_engine::Database;
    use pacman_sproc::ProcRegistry;
    use pacman_storage::{DiskConfig, StorageSet};
    use pacman_wal::{Durability, DurabilityConfig};
    use pacman_workloads::{run_workload, DriverConfig, DriverResult, Workload};
    use std::sync::Arc;

    /// A running system: database, durability, registry.
    pub struct System {
        /// The live database.
        pub db: Arc<Database>,
        /// The durability subsystem.
        pub durability: Arc<Durability>,
        /// Registered procedures.
        pub registry: ProcRegistry,
        /// The devices.
        pub storage: StorageSet,
    }

    impl System {
        /// Boot a workload on fresh devices.
        pub fn boot(
            workload: &dyn Workload,
            storage: StorageSet,
            config: DurabilityConfig,
        ) -> System {
            let db = Arc::new(Database::new(workload.catalog()));
            workload.load(&db);
            let registry = workload.registry();
            let durability = Durability::start(Arc::clone(&db), storage.clone(), config);
            System {
                db,
                durability,
                registry,
                storage,
            }
        }

        /// Boot with unthrottled test devices.
        pub fn boot_for_tests(workload: &dyn Workload, config: DurabilityConfig) -> System {
            Self::boot(
                workload,
                StorageSet::identical(2, DiskConfig::unthrottled("dev")),
                config,
            )
        }

        /// Run the driver.
        pub fn run(&self, workload: &dyn Workload, config: &DriverConfig) -> DriverResult {
            run_workload(&self.db, workload, &self.registry, &self.durability, config)
        }

        /// Crash the system: all in-memory state is dropped; only the
        /// devices survive. Returns what recovery needs.
        pub fn crash(self) -> (StorageSet, ProcRegistry, pacman_engine::Catalog) {
            self.durability.crash();
            let catalog = self.db.catalog().clone();
            (self.storage, self.registry, catalog)
        }

        /// Shut down gracefully (everything sealed + durable).
        pub fn shutdown(
            self,
        ) -> (
            StorageSet,
            ProcRegistry,
            pacman_engine::Catalog,
            Arc<Database>,
        ) {
            self.durability.shutdown();
            let catalog = self.db.catalog().clone();
            (self.storage, self.registry, catalog, self.db)
        }
    }

    /// Recover a crashed system.
    pub fn recover_crashed(
        storage: &StorageSet,
        catalog: &pacman_engine::Catalog,
        registry: &ProcRegistry,
        config: &RecoveryConfig,
    ) -> pacman_common::Result<RecoveryOutcome> {
        recover(storage, catalog, registry, config)
    }
}
